package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"mlcache/internal/cpu"
	"mlcache/internal/sweep"
)

// LocalWorkerID is the worker name the coordinator's in-process fallback
// executor leases shards under.
const LocalWorkerID = "_local"

// ErrIncomplete marks a grid point that never received a result (the
// coordinator was cancelled before the grid finished).
var ErrIncomplete = errors.New("coord: point not completed")

// Config tunes the coordinator. The zero value of every field gets a
// sensible default from New; only Job is required.
type Config struct {
	Job JobSpec
	// Shards is how many strided partitions the grid is leased out in;
	// more shards than workers keeps slow workers from stalling the tail.
	// Defaults to min(8, number of grid points).
	Shards int
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the shard is reassigned (default 10s). Heartbeat is the interval
	// advertised to workers (default LeaseTTL/5, so several lost beats
	// are needed to forfeit a lease).
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// RetryBase is the backoff before a failed shard's first retry,
	// doubling per attempt with jitter, capped at RetryMax (defaults
	// 250ms / 15s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// SpeculateAfter is how long a shard may stay leased before an idle
	// worker is handed a speculative duplicate lease (straggler
	// re-execution; first writer wins). Default 2×LeaseTTL; negative
	// disables speculation.
	SpeculateAfter time.Duration
	// LocalFallbackAfter degrades to in-process execution: if the grid is
	// unfinished and no worker has registered, heartbeat, or completed
	// anything for this long, the coordinator starts leasing shards to
	// itself (worker LocalWorkerID). 0 disables the fallback.
	LocalFallbackAfter time.Duration
	// LocalParallelism bounds the fallback executor's worker pool
	// (0 = GOMAXPROCS).
	LocalParallelism int
	// Prior seeds already-known results by grid index (resume from a
	// checkpoint); seeded points render with status "ckpt" like the local
	// resume path.
	Prior map[int]cpu.Result
	// OnResult is called once per newly merged point, in merge order,
	// under the coordinator's lock (calls are serialized); the checkpoint
	// journal hangs off this hook. Never called for Prior points.
	OnResult func(pt sweep.Point, run cpu.Result)
	// Logf receives operational events (lease grants, expiries, retries);
	// nil means silent.
	Logf func(format string, args ...any)
	// Seed makes the retry jitter deterministic for tests; 0 means 1.
	Seed int64
}

type lease struct {
	worker   string
	token    uint64
	issued   time.Time
	deadline time.Time
}

type shardState struct {
	id      int
	indices []int
	left    int // indices still missing a result
	done    bool
	// leases holds the active grants: at most one primary plus one
	// speculative duplicate.
	leases []lease
	// excluded workers failed this shard (lease expiry or release) and
	// are retried only when no other live worker can take it.
	excluded map[string]bool
	// history records every worker ever granted this shard, so a late
	// upload from an expired lease is still accepted (its results are
	// deterministic, and rejecting them would waste finished work).
	history   map[string]bool
	attempts  int
	notBefore time.Time
}

type workerInfo struct {
	lastSeen     time.Time
	traceSkipped int64
}

// Coordinator owns a grid's distribution state: shard leases, merged
// results, worker liveness, and the retry machinery. All methods are safe
// for concurrent use.
type Coordinator struct {
	cfg Config
	pts []sweep.Point
	now func() time.Time // injectable clock for tests

	mu           sync.Mutex
	shards       []*shardState
	have         []bool
	fromPrior    []bool
	runs         []cpu.Result
	workers      map[string]*workerInfo
	remaining    int // shards not yet done
	leaseSeq     uint64
	rng          *rand.Rand
	lastActivity time.Time
	localRunning bool

	doneOnce sync.Once
	doneCh   chan struct{}
}

// New validates the job and builds a coordinator with the grid fully
// partitioned. Prior results are merged immediately; a fully covered grid
// is born done.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Job.Validate(); err != nil {
		return nil, err
	}
	pts := cfg.Job.Points()
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > len(pts) {
		cfg.Shards = len(pts)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 5
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 250 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 15 * time.Second
	}
	if cfg.SpeculateAfter == 0 {
		cfg.SpeculateAfter = 2 * cfg.LeaseTTL
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Coordinator{
		cfg:       cfg,
		pts:       pts,
		now:       time.Now,
		have:      make([]bool, len(pts)),
		fromPrior: make([]bool, len(pts)),
		runs:      make([]cpu.Result, len(pts)),
		workers:   map[string]*workerInfo{},
		rng:       rand.New(rand.NewSource(seed)),
		doneCh:    make(chan struct{}),
	}
	for s := 0; s < cfg.Shards; s++ {
		st := &shardState{id: s, excluded: map[string]bool{}, history: map[string]bool{}}
		for i := s; i < len(pts); i += cfg.Shards {
			st.indices = append(st.indices, i)
		}
		st.left = len(st.indices)
		c.shards = append(c.shards, st)
	}
	c.remaining = len(c.shards)
	for idx, run := range cfg.Prior {
		if idx < 0 || idx >= len(pts) || c.have[idx] {
			continue
		}
		c.have[idx] = true
		c.fromPrior[idx] = true
		c.runs[idx] = run
		sh := c.shards[idx%cfg.Shards]
		sh.left--
		if sh.left == 0 {
			c.markDoneLocked(sh)
		}
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// touchLocked records worker liveness; any worker contact defers the local
// fallback.
func (c *Coordinator) touchLocked(worker string, now time.Time) *workerInfo {
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{}
		c.workers[worker] = w
	}
	w.lastSeen = now
	if worker != LocalWorkerID {
		c.lastActivity = now
	}
	return w
}

// markDoneLocked retires a finished shard, revoking its outstanding leases
// (their holders see Cancel on the next heartbeat).
func (c *Coordinator) markDoneLocked(sh *shardState) {
	if sh.done {
		return
	}
	sh.done = true
	sh.leases = nil
	c.remaining--
	if c.remaining == 0 {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}
}

// backoffLocked computes the capped exponential retry delay with jitter
// for a shard entering its attempt-th retry.
func (c *Coordinator) backoffLocked(attempts int) time.Duration {
	d := c.cfg.RetryBase
	for i := 1; i < attempts && d < c.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	// Up to 50% jitter keeps retried shards from thundering back in sync.
	return d + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// failShardLocked handles a lost lease (expiry or release): the shard goes
// back to pending behind a backoff gate, and the worker that lost it is
// excluded from the retry so the shard lands elsewhere.
func (c *Coordinator) failShardLocked(sh *shardState, worker, why string, now time.Time) {
	sh.excluded[worker] = true
	sh.attempts++
	sh.notBefore = now.Add(c.backoffLocked(sh.attempts))
	c.logf("coord: shard %d lost by %s (%s); retry %d after %s",
		sh.id, worker, why, sh.attempts, sh.notBefore.Sub(now).Round(time.Millisecond))
}

// expireLocked sweeps lease deadlines and relaxes exclusions that would
// otherwise deadlock a shard (every live worker excluded).
func (c *Coordinator) expireLocked(now time.Time) {
	for _, sh := range c.shards {
		if sh.done {
			continue
		}
		kept := sh.leases[:0]
		for _, l := range sh.leases {
			if l.deadline.After(now) {
				kept = append(kept, l)
			} else {
				c.failShardLocked(sh, l.worker, "lease expired", now)
			}
		}
		sh.leases = kept
		if len(sh.leases) == 0 && len(sh.excluded) > 0 && !c.anyEligibleWorkerLocked(sh, now) {
			c.logf("coord: shard %d: every live worker excluded; clearing exclusions", sh.id)
			sh.excluded = map[string]bool{}
		}
	}
}

// anyEligibleWorkerLocked reports whether some live, non-excluded worker
// could still take the shard.
func (c *Coordinator) anyEligibleWorkerLocked(sh *shardState, now time.Time) bool {
	horizon := now.Add(-2 * c.cfg.LeaseTTL)
	for name, w := range c.workers {
		if w.lastSeen.After(horizon) && !sh.excluded[name] {
			return true
		}
	}
	return false
}

// Register handles a worker announcement.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Worker == "" {
		return RegisterResponse{}, &httpError{http.StatusBadRequest, "worker name required"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.touchLocked(req.Worker, now)
	c.logf("coord: worker %s registered", req.Worker)
	return RegisterResponse{
		Version:     ProtocolVersion,
		Job:         c.cfg.Job,
		Shards:      c.cfg.Shards,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.cfg.Heartbeat.Milliseconds(),
	}, nil
}

// Lease hands the worker a shard (or an outstanding lease it already
// holds — lease requests are idempotent so a lost response is retried
// safely), tells it to wait, or reports the grid done.
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	if req.Worker == "" {
		return LeaseResponse{}, &httpError{http.StatusBadRequest, "worker name required"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.touchLocked(req.Worker, now)
	c.expireLocked(now)
	return c.grantLocked(req.Worker, now), nil
}

func (c *Coordinator) grantLocked(worker string, now time.Time) LeaseResponse {
	// An outstanding lease is re-granted verbatim: the worker asking again
	// means it never saw (or lost) the response.
	for _, sh := range c.shards {
		if sh.done {
			continue
		}
		for i := range sh.leases {
			if sh.leases[i].worker == worker {
				sh.leases[i].deadline = now.Add(c.cfg.LeaseTTL)
				return LeaseResponse{Shard: sh.id, Shards: c.cfg.Shards, Lease: sh.leases[i].token}
			}
		}
	}
	if c.remaining == 0 {
		return LeaseResponse{Done: true}
	}

	grant := func(sh *shardState, why string) LeaseResponse {
		c.leaseSeq++
		l := lease{worker: worker, token: c.leaseSeq, issued: now, deadline: now.Add(c.cfg.LeaseTTL)}
		sh.leases = append(sh.leases, l)
		sh.history[worker] = true
		c.logf("coord: shard %d leased to %s (%s, token %d)", sh.id, worker, why, l.token)
		return LeaseResponse{Shard: sh.id, Shards: c.cfg.Shards, Lease: l.token}
	}

	// Pending shards first, skipping workers that already failed them.
	var firstPending *shardState
	for _, sh := range c.shards {
		if sh.done || len(sh.leases) > 0 || now.Before(sh.notBefore) {
			continue
		}
		if firstPending == nil {
			firstPending = sh
		}
		if !sh.excluded[worker] {
			return grant(sh, "pending")
		}
	}
	// A pending shard whose only volunteers are excluded workers: better a
	// retry on a suspect worker than a stalled grid.
	if firstPending != nil && !c.anyEligibleWorkerLocked(firstPending, now) {
		return grant(firstPending, "exclusion relaxed")
	}

	// Speculative re-execution: duplicate the longest-running single lease
	// onto this idle worker; the engine's determinism makes the race
	// harmless and first writer wins.
	if c.cfg.SpeculateAfter >= 0 {
		var victim *shardState
		for _, sh := range c.shards {
			if sh.done || len(sh.leases) != 1 || sh.leases[0].worker == worker || sh.excluded[worker] {
				continue
			}
			if now.Sub(sh.leases[0].issued) < c.cfg.SpeculateAfter {
				continue
			}
			if victim == nil || sh.leases[0].issued.Before(victim.leases[0].issued) {
				victim = sh
			}
		}
		if victim != nil {
			return grant(victim, "speculative")
		}
	}

	// Nothing grantable: wait out the earliest backoff gate (or one
	// heartbeat if the blockers are active leases).
	wait := c.cfg.Heartbeat
	for _, sh := range c.shards {
		if sh.done || len(sh.leases) > 0 {
			continue
		}
		if d := sh.notBefore.Sub(now); d > 0 && d < wait {
			wait = d
		}
	}
	if wait < 25*time.Millisecond {
		wait = 25 * time.Millisecond
	}
	return LeaseResponse{WaitMS: wait.Milliseconds()}
}

// absorbLocked merges point results first-writer-wins. Indices outside the
// shard's stride are rejected (a confused worker cannot corrupt other
// shards); duplicates are ignored, which is what makes retransmission,
// speculation, and late uploads all safe.
func (c *Coordinator) absorbLocked(sh *shardState, results []PointResult) {
	for _, pr := range results {
		if pr.Index < 0 || pr.Index >= len(c.pts) || pr.Index%c.cfg.Shards != sh.id {
			c.logf("coord: shard %d: discarding result for out-of-shard index %d", sh.id, pr.Index)
			continue
		}
		if c.have[pr.Index] {
			continue
		}
		c.have[pr.Index] = true
		c.runs[pr.Index] = pr.Run
		sh.left--
		if c.cfg.OnResult != nil {
			c.cfg.OnResult(c.pts[pr.Index], pr.Run)
		}
	}
	if sh.left == 0 {
		c.markDoneLocked(sh)
	}
}

func (c *Coordinator) shard(id int) (*shardState, error) {
	if id < 0 || id >= len(c.shards) {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("no shard %d", id)}
	}
	return c.shards[id], nil
}

// Heartbeat renews a lease and merges the worker's completed points so
// far. Cancel in the response tells the worker its lease is gone (expired,
// released, or the shard finished elsewhere) and the shard should be
// abandoned.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	w := c.touchLocked(req.Worker, now)
	if req.TraceSkipped > w.traceSkipped {
		w.traceSkipped = req.TraceSkipped
		c.logf("coord: worker %s reports %d corrupt trace record(s) skipped", req.Worker, req.TraceSkipped)
	}
	sh, err := c.shard(req.Shard)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	c.expireLocked(now)
	held := false
	for i := range sh.leases {
		if sh.leases[i].worker == req.Worker && sh.leases[i].token == req.Lease {
			sh.leases[i].deadline = now.Add(c.cfg.LeaseTTL)
			held = true
			break
		}
	}
	// Results are merged even from a stale lease: the work is done and
	// deterministic, and first-writer-wins dedup keeps it safe. But only a
	// worker that was at some point granted this shard may contribute.
	if sh.history[req.Worker] {
		c.absorbLocked(sh, req.Done)
	}
	return HeartbeatResponse{Cancel: !held || sh.done}, nil
}

// Complete uploads a finished shard. Like heartbeats it is idempotent and
// lease-staleness-tolerant: the upload is judged by its results, not by
// whether the lease is still current.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	w := c.touchLocked(req.Worker, now)
	if req.TraceSkipped > w.traceSkipped {
		w.traceSkipped = req.TraceSkipped
	}
	sh, err := c.shard(req.Shard)
	if err != nil {
		return CompleteResponse{}, err
	}
	if !sh.history[req.Worker] {
		return CompleteResponse{}, &httpError{http.StatusConflict,
			fmt.Sprintf("worker %s was never leased shard %d", req.Worker, req.Shard)}
	}
	c.absorbLocked(sh, req.Results)
	// Drop the worker's lease: the shard is either done or (an incomplete
	// upload) back in play for someone else.
	kept := sh.leases[:0]
	for _, l := range sh.leases {
		if l.worker != req.Worker {
			kept = append(kept, l)
		}
	}
	sh.leases = kept
	if !sh.done && sh.left > 0 {
		c.logf("coord: shard %d: complete from %s left %d point(s) unfilled", sh.id, req.Worker, sh.left)
	}
	return CompleteResponse{OK: true, Done: c.remaining == 0}, nil
}

// Release hands back a lease the worker cannot finish, reassigning the
// shard immediately (with the worker excluded) instead of waiting out the
// TTL. Releasing an already-lost lease is a no-op.
func (c *Coordinator) Release(req ReleaseRequest) (ReleaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	c.touchLocked(req.Worker, now)
	sh, err := c.shard(req.Shard)
	if err != nil {
		return ReleaseResponse{}, err
	}
	for i := range sh.leases {
		if sh.leases[i].worker == req.Worker && sh.leases[i].token == req.Lease {
			sh.leases = append(sh.leases[:i], sh.leases[i+1:]...)
			why := req.Reason
			if why == "" {
				why = "released"
			}
			c.failShardLocked(sh, req.Worker, why, now)
			break
		}
	}
	return ReleaseResponse{OK: true}, nil
}

// Run drives the coordinator's clock: lease expiry, exclusion relaxation,
// and the local fallback trigger. It returns nil once every grid point is
// merged, or ctx.Err() on cancellation. Serve the Handler concurrently;
// Run owns no listener.
func (c *Coordinator) Run(ctx context.Context) error {
	c.mu.Lock()
	if c.lastActivity.IsZero() {
		c.lastActivity = c.now()
	}
	c.mu.Unlock()

	tick := c.cfg.LeaseTTL / 4
	if c.cfg.LocalFallbackAfter > 0 && c.cfg.LocalFallbackAfter/4 < tick {
		tick = c.cfg.LocalFallbackAfter / 4
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.doneCh:
			return nil
		case <-t.C:
			c.mu.Lock()
			now := c.now()
			c.expireLocked(now)
			fallback := c.cfg.LocalFallbackAfter > 0 && !c.localRunning &&
				c.remaining > 0 && now.Sub(c.lastActivity) >= c.cfg.LocalFallbackAfter
			if fallback {
				c.localRunning = true
			}
			c.mu.Unlock()
			if fallback {
				c.logf("coord: no worker activity for %s; running remaining shards in-process", c.cfg.LocalFallbackAfter)
				go c.localLoop(ctx)
			}
		}
	}
}

// localLoop is the degraded mode: the coordinator leases shards to itself
// through the same state machine remote workers use and simulates them
// in-process, so a sweep with zero (or all-dead) workers still finishes.
func (c *Coordinator) localLoop(ctx context.Context) {
	runner, res, err := c.cfg.Job.NewRunner()
	if err != nil {
		c.logf("coord: local fallback cannot build runner: %v", err)
		c.mu.Lock()
		c.localRunning = false
		c.mu.Unlock()
		return
	}
	defer res.Close()
	for ctx.Err() == nil {
		lr, err := c.Lease(LeaseRequest{Worker: LocalWorkerID})
		if err != nil || lr.Done {
			break
		}
		if lr.WaitMS > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(time.Duration(lr.WaitMS) * time.Millisecond):
			}
			continue
		}
		c.runLocalShard(ctx, runner, lr)
	}
	c.mu.Lock()
	c.localRunning = false
	c.mu.Unlock()
}

func (c *Coordinator) runLocalShard(ctx context.Context, runner sweep.Runner, lr LeaseResponse) {
	shardPts := sweep.Shard(c.pts, lr.Shard, c.cfg.Shards)
	index := map[sweep.Point]int{}
	for j, pt := range shardPts {
		index[pt] = lr.Shard + j*c.cfg.Shards
	}
	opts := sweep.Options{
		Parallelism: c.cfg.LocalParallelism,
		Retries:     1,
		OnResult: func(r sweep.Result) {
			c.mu.Lock()
			defer c.mu.Unlock()
			sh := c.shards[lr.Shard]
			c.absorbLocked(sh, []PointResult{{Index: index[r.Point], Run: r.Run}})
			// Completing points is the local worker's heartbeat.
			now := c.now()
			for i := range sh.leases {
				if sh.leases[i].worker == LocalWorkerID && sh.leases[i].token == lr.Lease {
					sh.leases[i].deadline = now.Add(c.cfg.LeaseTTL)
				}
			}
		},
	}
	results, runErr := runner.RunContext(ctx, shardPts, opts)
	if runErr != nil {
		return // cancelled; leases lapse naturally
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	if failed > 0 {
		c.logf("coord: local fallback: %d point(s) of shard %d failed", failed, lr.Shard)
		_, _ = c.Release(ReleaseRequest{Worker: LocalWorkerID, Shard: lr.Shard, Lease: lr.Lease, Reason: "local failure"})
		return
	}
	_, _ = c.Complete(CompleteRequest{Worker: LocalWorkerID, Shard: lr.Shard, Lease: lr.Lease})
}

// Wait blocks until the grid is fully merged or ctx is cancelled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports merged and total grid point counts.
func (c *Coordinator) Done() (done, total int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.have {
		if h {
			done++
		}
	}
	return done, len(c.pts)
}

// TraceSkipped returns the largest corrupt-record skip count any worker
// reported — nonzero means some worker decoded a damaged trace copy.
func (c *Coordinator) TraceSkipped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max int64
	for _, w := range c.workers {
		if w.traceSkipped > max {
			max = w.traceSkipped
		}
	}
	return max
}

// Results assembles the merged grid in canonical order. Points from Prior
// are marked Skipped (rendered "ckpt", like the local resume path); points
// never merged (cancelled run) carry ErrIncomplete.
func (c *Coordinator) Results() []sweep.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sweep.Result, len(c.pts))
	for i, pt := range c.pts {
		out[i] = sweep.Result{Point: pt}
		switch {
		case c.have[i]:
			out[i].Run = c.runs[i]
			out[i].Skipped = c.fromPrior[i]
		default:
			out[i].Err = ErrIncomplete
		}
	}
	return out
}

// httpError carries a status code through the handler plumbing.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, handleJSON(c.Register))
	mux.HandleFunc(PathLease, handleJSON(c.Lease))
	mux.HandleFunc(PathHeartbeat, handleJSON(c.Heartbeat))
	mux.HandleFunc(PathComplete, handleJSON(c.Complete))
	mux.HandleFunc(PathRelease, handleJSON(c.Release))
	return mux
}

func handleJSON[Req, Resp any](fn func(Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		body := http.MaxBytesReader(w, r.Body, 256<<20)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		resp, err := fn(req)
		if err != nil {
			var he *httpError
			if errors.As(err, &he) {
				http.Error(w, he.msg, he.code)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			// The response is already committed; nothing to salvage. The
			// client's JSON decode fails and it retries.
			return
		}
	}
}

package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"mlcache/internal/store"
	"mlcache/internal/sweep"
	"mlcache/internal/trace"
)

// Worker joins a coordinator, builds the job's runner locally, and loops:
// lease a shard, simulate it (streaming completed points with every
// heartbeat), upload the full shard, repeat until the coordinator reports
// the grid done. Every request retries transport faults, 5xx, and torn
// responses with capped exponential backoff and jitter; a lease revoked
// mid-shard (heartbeat Cancel) abandons the shard without losing the
// points already streamed.
type Worker struct {
	// ID names the worker to the coordinator; it must be unique in the
	// fleet (exclusion and lease bookkeeping key on it).
	ID string
	// Coordinator is the base URL, e.g. "http://10.0.0.1:9191".
	Coordinator string
	// Client issues the HTTP requests; nil means http.DefaultClient. The
	// chaos harness injects faults here.
	Client *http.Client
	// Parallelism bounds the shard simulation pool (0 = GOMAXPROCS).
	Parallelism int
	// PointRetries is the per-point retry budget within a shard attempt.
	PointRetries int
	// RequestRetries bounds retransmissions per request (default 8); when
	// a request is still failing after the budget the worker gives up and
	// Run returns the error — from the coordinator's side it died, and
	// its shards are reassigned.
	RequestRetries int
	// Artifacts is the local content-addressed cache backing jobs whose
	// spec names the trace by digest. Fetches go to the coordinator's
	// /artifacts/ endpoint over the same Client (same TLS and auth). A nil
	// cache limits the worker to path- or synthetic-trace jobs.
	Artifacts *store.Cache
	// Fetch, when non-nil, overrides where cache misses are filled from —
	// e.g. a backend.Fetcher over an S3 backend, so a fleet pulls straight
	// from the bucket instead of funneling through the coordinator. The
	// cache's digest verification applies either way.
	Fetch store.Fetcher
	// FetchThrottleBPS caps artifact download throughput (0 = unlimited);
	// a fault-injection knob for the transfer chaos tests.
	FetchThrottleBPS int64
	// Logf receives operational events; nil means silent.
	Logf func(format string, args ...any)

	rngOnce sync.Once
	rngMu   sync.Mutex
	rng     *rand.Rand
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// jitter returns a random duration in [0, d). The PRNG is seeded from the
// worker ID so a fixed fleet layout retries on a fixed schedule — part of
// what makes the chaos tests deterministic.
func (w *Worker) jitter(d time.Duration) time.Duration {
	w.rngOnce.Do(func() {
		h := fnv.New64a()
		io.WriteString(h, w.ID)
		w.rng = rand.New(rand.NewSource(int64(h.Sum64())))
	})
	if d <= 0 {
		return 0
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return time.Duration(w.rng.Int63n(int64(d)))
}

// Run participates until the grid is done (nil), ctx is cancelled, or the
// coordinator is unreachable past the retry budget.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" || w.Coordinator == "" {
		return fmt.Errorf("coord: worker needs ID and Coordinator")
	}
	retries := w.RequestRetries
	if retries <= 0 {
		retries = 8
	}
	var reg RegisterResponse
	if err := w.post(ctx, PathRegister, RegisterRequest{Worker: w.ID}, &reg, retries); err != nil {
		return fmt.Errorf("coord: register: %w", err)
	}
	if reg.Version != ProtocolVersion {
		return fmt.Errorf("coord: coordinator speaks protocol v%d, this worker v%d", reg.Version, ProtocolVersion)
	}
	runner, traceSkipped, cleanup, err := w.buildRunner(ctx, reg.Job)
	if err != nil {
		return fmt.Errorf("coord: building runner from job spec: %w", err)
	}
	defer cleanup()
	all := reg.Job.Points()
	w.logf("worker %s: joined %s: %d grid points in %d shards", w.ID, w.Coordinator, len(all), reg.Shards)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr LeaseResponse
		if err := w.post(ctx, PathLease, LeaseRequest{Worker: w.ID}, &lr, retries); err != nil {
			return fmt.Errorf("coord: lease: %w", err)
		}
		switch {
		case lr.Done:
			w.logf("worker %s: grid done", w.ID)
			return nil
		case lr.WaitMS > 0:
			wait := time.Duration(lr.WaitMS) * time.Millisecond
			if wait > time.Second {
				wait = time.Second
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
		default:
			gridDone, err := w.runShard(ctx, runner, all, lr, reg, traceSkipped, retries)
			if err != nil {
				return err
			}
			if gridDone {
				w.logf("worker %s: grid done", w.ID)
				return nil
			}
		}
	}
}

// buildRunner constructs the job's sweep runner. A spec that names its
// trace by digest resolves through the worker's artifact cache — fetched
// from the coordinator's own /artifacts/ endpoint, verified, and pinned
// for the life of the run — unless the spec's TracePath hint already
// exists locally (shared-filesystem deployments skip the transfer). All
// other specs go through JobSpec.NewRunner unchanged.
func (w *Worker) buildRunner(ctx context.Context, job JobSpec) (sweep.Runner, int64, func(), error) {
	d := job.Digest()
	if !d.IsZero() && job.TracePath != "" {
		if _, err := os.Stat(job.TracePath); err == nil {
			d = store.Digest{} // local hint wins; no transfer needed
		}
	}
	if d.IsZero() {
		runner, res, err := job.NewRunner()
		if err != nil {
			return sweep.Runner{}, 0, nil, err
		}
		return runner, res.TraceSkipped, func() { res.Close() }, nil
	}
	if w.Artifacts == nil {
		return sweep.Runner{}, 0, nil, fmt.Errorf("job trace is content-addressed (%s) but this worker has no artifact cache; run it with one", d)
	}
	src := w.Fetch
	if src == nil {
		src = &store.Client{
			Base:        w.Coordinator,
			HTTPClient:  w.Client,
			ThrottleBPS: w.FetchThrottleBPS,
			Logf:        w.Logf,
		}
	}
	art, err := w.Artifacts.Open(ctx, src, d, job.ArtifactCRC)
	if err != nil {
		return sweep.Runner{}, 0, nil, fmt.Errorf("fetching artifact %s: %w", d, err)
	}
	arena := art.Arena()
	if job.Refs > 0 && int64(arena.Len()) > job.Refs {
		arena = trace.NewArena(arena.Refs()[:job.Refs])
	}
	// The pin holds the mmap against cache eviction until the run ends.
	return job.RunnerFor(arena), 0, art.Unpin, nil
}

// runShard simulates one leased shard. Completed points stream to the
// coordinator with every heartbeat (cumulatively, so lost beats cost
// nothing); the final upload carries the full shard. Returns a nil error
// when the shard was finished, abandoned (lease revoked), or released
// (local failure) — only an unreachable coordinator or cancelled ctx is an
// error — and gridDone when the upload completed the whole grid.
func (w *Worker) runShard(ctx context.Context, runner sweep.Runner, all []sweep.Point, lr LeaseResponse, reg RegisterResponse, traceSkipped int64, retries int) (gridDone bool, _ error) {
	shardPts := sweep.Shard(all, lr.Shard, lr.Shards)
	index := map[sweep.Point]int{}
	for j, pt := range shardPts {
		index[pt] = lr.Shard + j*lr.Shards
	}
	w.logf("worker %s: shard %d/%d: %d points", w.ID, lr.Shard, lr.Shards, len(shardPts))

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var done []PointResult
	snapshot := func() []PointResult {
		mu.Lock()
		defer mu.Unlock()
		return append([]PointResult(nil), done...)
	}

	// Heartbeat loop: renew the lease and stream results. A single failed
	// beat is not retried — the next tick is the retry — and several beats
	// fit in one lease TTL, so only sustained loss forfeits the lease.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		interval := time.Duration(reg.HeartbeatMS) * time.Millisecond
		if interval <= 0 {
			interval = 2 * time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-sctx.Done():
				return
			case <-t.C:
				var resp HeartbeatResponse
				err := w.postOnce(sctx, PathHeartbeat, HeartbeatRequest{
					Worker: w.ID, Shard: lr.Shard, Lease: lr.Lease,
					Done: snapshot(), TraceSkipped: traceSkipped,
				}, &resp)
				if err == nil && resp.Cancel {
					w.logf("worker %s: shard %d lease revoked; abandoning", w.ID, lr.Shard)
					cancel()
					return
				}
			}
		}
	}()

	opts := sweep.Options{
		Parallelism: w.Parallelism,
		Retries:     w.PointRetries,
		Backoff:     100 * time.Millisecond,
		OnResult: func(r sweep.Result) {
			mu.Lock()
			done = append(done, PointResult{Index: index[r.Point], Run: r.Run})
			mu.Unlock()
		},
	}
	results, runErr := runner.RunContext(sctx, shardPts, opts)
	close(hbStop)
	hbWG.Wait()

	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	if sctx.Err() != nil && runErr != nil {
		// Lease revoked mid-simulation: the points already completed were
		// streamed; the rest belong to whoever holds the shard now.
		return false, nil
	}
	var failed error
	for _, r := range results {
		if r.Err != nil && !sweep.Canceled(r.Err) {
			failed = r.Err
			break
		}
	}
	if failed != nil {
		// A point this worker cannot simulate: hand the shard back so the
		// coordinator retries it elsewhere, and exclude us from it.
		w.logf("worker %s: releasing shard %d: %v", w.ID, lr.Shard, failed)
		var rel ReleaseResponse
		if err := w.post(ctx, PathRelease, ReleaseRequest{
			Worker: w.ID, Shard: lr.Shard, Lease: lr.Lease, Reason: failed.Error(),
		}, &rel, retries); err != nil {
			return false, fmt.Errorf("coord: release: %w", err)
		}
		return false, nil
	}
	var cr CompleteResponse
	if err := w.post(ctx, PathComplete, CompleteRequest{
		Worker: w.ID, Shard: lr.Shard, Lease: lr.Lease,
		Results: snapshot(), TraceSkipped: traceSkipped,
	}, &cr, retries); err != nil {
		return false, fmt.Errorf("coord: complete shard %d: %w", lr.Shard, err)
	}
	w.logf("worker %s: shard %d complete", w.ID, lr.Shard)
	return cr.Done, nil
}

// terminalError marks a response that retrying cannot fix (4xx).
type terminalError struct {
	err error
}

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// post sends one JSON request with up to retries retransmissions on
// transport errors, 5xx, and torn responses, backing off exponentially
// (capped at 2s) with jitter.
func (w *Worker) post(ctx context.Context, path string, req, resp any, retries int) error {
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff + w.jitter(backoff/2)):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
		err := w.postOnce(ctx, path, req, resp)
		if err == nil {
			return nil
		}
		var te *terminalError
		if errors.As(err, &te) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("%s failed after %d attempts: %w", path, retries+1, lastErr)
}

// postOnce is a single request/response exchange. A response that cannot
// be decoded — torn mid-body, truncated JSON — is a retryable error like
// any transport fault; the protocol's idempotency makes the retry safe.
func (w *Worker) postOnce(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return &terminalError{err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return &terminalError{err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	hresp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		err := fmt.Errorf("%s: %s: %s", path, hresp.Status, bytes.TrimSpace(msg))
		if hresp.StatusCode >= 400 && hresp.StatusCode < 500 &&
			hresp.StatusCode != http.StatusRequestTimeout && hresp.StatusCode != http.StatusTooManyRequests {
			return &terminalError{err}
		}
		return err
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("%s: decoding response: %w", path, err)
	}
	return nil
}

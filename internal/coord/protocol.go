package coord

import (
	"mlcache/internal/cpu"
)

// ProtocolVersion is bumped on any incompatible change to the wire types;
// a worker refuses to join a coordinator speaking a different version.
// v2 added content-addressed traces (JobSpec.ArtifactDigest): a v1 worker
// cannot honor a digest-only spec, so the version gate keeps it out.
// v3 added JobSpec.DeadlineSec and the Validate admission bounds: a v2
// worker would silently drop a job's deadline and accept specs a v3
// coordinator rejects, so the gate keeps fleets in step.
const ProtocolVersion = 3

// Endpoint paths. All endpoints are POST with JSON bodies and JSON
// responses; every request is idempotent, so a client that saw a torn or
// lost response simply retries. The lease endpoint re-grants a worker's
// outstanding lease, heartbeat/complete merge first-writer-wins, and
// release of an already-released lease is a no-op.
const (
	PathRegister  = "/v1/register"
	PathLease     = "/v1/lease"
	PathHeartbeat = "/v1/heartbeat"
	PathComplete  = "/v1/complete"
	PathRelease   = "/v1/release"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	Worker string `json:"worker"`
}

// RegisterResponse hands the worker everything it needs to participate:
// the job spec (from which it reconstructs the grid and runner), the shard
// count, and the liveness parameters it must obey.
type RegisterResponse struct {
	Version int     `json:"version"`
	Job     JobSpec `json:"job"`
	// Shards is the number of strided partitions of the grid; a lease
	// names one of them.
	Shards int `json:"shards"`
	// LeaseTTLMS is how long a lease lives without a heartbeat before the
	// coordinator reassigns the shard. HeartbeatMS is the interval workers
	// must beat at (several beats fit in one TTL, so a single lost beat
	// does not forfeit the lease).
	LeaseTTLMS  int64 `json:"lease_ttl_ms"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for a shard to work on.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard lease, tells the worker to wait, or reports
// the grid done. Exactly one of Done, WaitMS, or a grant (Shards > 0) is
// meaningful.
type LeaseResponse struct {
	// Done: every grid point is merged; the worker can exit.
	Done bool `json:"done,omitempty"`
	// WaitMS: nothing grantable right now (shards in retry backoff, or all
	// leased and too young to speculate) — ask again after this long.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// Shard i of Shards, strided like sweep.Shard: the lease covers grid
	// points at indices ≡ Shard (mod Shards). Lease is the fencing token
	// the worker must present on heartbeat, complete, and release.
	Shard  int    `json:"shard"`
	Shards int    `json:"shards,omitempty"`
	Lease  uint64 `json:"lease"`
}

// PointResult carries one completed grid point: the point's global index in
// the canonical enumeration and its simulation result. Results are merged
// first-writer-wins per index, which together with the engine's
// bit-determinism makes every retransmission, retry, and speculative
// duplicate harmless.
type PointResult struct {
	Index int        `json:"index"`
	Run   cpu.Result `json:"run"`
}

// HeartbeatRequest renews a lease and streams results: Done carries every
// point the worker has completed on this shard so far (cumulative, so the
// stream survives arbitrarily many lost heartbeats).
type HeartbeatRequest struct {
	Worker string        `json:"worker"`
	Shard  int           `json:"shard"`
	Lease  uint64        `json:"lease"`
	Done   []PointResult `json:"done,omitempty"`
	// TraceSkipped is the worker's corrupt-record skip count from its
	// lenient trace decode, surfaced so the coordinator can report
	// corruption rates per worker.
	TraceSkipped int64 `json:"trace_skipped,omitempty"`
}

// HeartbeatResponse acknowledges a beat. Cancel tells the worker its lease
// is gone — expired, released, or the shard was finished by a speculative
// twin — and it should abandon the shard (its results so far are already
// merged) and ask for a new lease.
type HeartbeatResponse struct {
	Cancel bool `json:"cancel,omitempty"`
}

// CompleteRequest uploads a finished shard: the full result set for every
// point of the shard (self-sufficient even if every heartbeat was lost).
type CompleteRequest struct {
	Worker       string        `json:"worker"`
	Shard        int           `json:"shard"`
	Lease        uint64        `json:"lease"`
	Results      []PointResult `json:"results"`
	TraceSkipped int64         `json:"trace_skipped,omitempty"`
}

// CompleteResponse acknowledges the upload. Done piggybacks grid
// completion so a worker whose upload was the last piece can exit without
// racing the coordinator's own shutdown on one more lease poll.
type CompleteResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// ReleaseRequest returns a lease the worker cannot finish (a poisoned
// point, a local fault) so the coordinator can reassign immediately instead
// of waiting for the TTL. The releasing worker is excluded from the
// shard's retry.
type ReleaseRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	Lease  uint64 `json:"lease"`
	Reason string `json:"reason,omitempty"`
}

// ReleaseResponse acknowledges the release.
type ReleaseResponse struct {
	OK bool `json:"ok"`
}

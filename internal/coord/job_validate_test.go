package coord

import (
	"errors"
	"testing"
)

// boundTestSpec is a comfortably-valid baseline each case mutates; the
// same helper shape as cmd/mlcserve's flag-validation tests.
func boundTestSpec() JobSpec {
	return JobSpec{
		SizesBytes: []int64{8192, 16384},
		CyclesNS:   []int64{20, 30},
		Assoc:      2,
		L1KB:       4,
		Refs:       30000,
		Seed:       7,
	}
}

func repeatInt64(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestValidateBounds: JobSpec crosses trust boundaries, so absurd specs —
// the kind that would OOM or wedge the process at materialization time —
// are rejected at admission with a distinct sentinel per bound.
func TestValidateBounds(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*JobSpec)
		wantErr error
	}{
		{"too many sizes", func(s *JobSpec) { s.SizesBytes = repeatInt64(8192, MaxGridDim+1) }, ErrGridTooLarge},
		{"too many cycles", func(s *JobSpec) { s.CyclesNS = repeatInt64(20, MaxGridDim+1) }, ErrGridTooLarge},
		{
			"degenerate grid product",
			func(s *JobSpec) {
				s.SizesBytes = repeatInt64(8192, 1024)
				s.CyclesNS = repeatInt64(20, 1024)
			},
			ErrGridTooLarge,
		},
		{"L2 size too large", func(s *JobSpec) { s.SizesBytes[0] = MaxL2SizeBytes + 1 }, ErrL2SizeOutOfRange},
		{"cycle too large", func(s *JobSpec) { s.CyclesNS[0] = MaxCycleNS + 1 }, ErrCycleOutOfRange},
		{"assoc too large", func(s *JobSpec) { s.Assoc = MaxAssoc + 1 }, ErrAssocOutOfRange},
		{"L1 too large", func(s *JobSpec) { s.L1KB = MaxL1KB + 1 }, ErrL1OutOfRange},
		{"refs absurd", func(s *JobSpec) { s.Refs = 1 << 40 }, ErrRefsOutOfRange},
		{"refs negative", func(s *JobSpec) { s.Refs = -1 }, ErrRefsOutOfRange},
		{"lenient too large", func(s *JobSpec) { s.Lenient = MaxLenientBudget + 1 }, ErrLenientOutOfRange},
		{"deadline negative", func(s *JobSpec) { s.DeadlineSec = -5 }, ErrDeadlineOutOfRange},
		{"deadline absurd", func(s *JobSpec) { s.DeadlineSec = MaxDeadlineSec + 1 }, ErrDeadlineOutOfRange},
	}
	for _, tc := range cases {
		spec := boundTestSpec()
		tc.mutate(&spec)
		err := spec.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", tc.name)
			continue
		}
		if !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: error %q does not wrap %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidateBoundsAccepts: realistic workloads — including the paper's
// full 110-point grid at multi-million-reference scale, unlimited lenient
// budgets, and specs at the exact bounds — stay admissible.
func TestValidateBoundsAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*JobSpec)
	}{
		{"baseline", func(s *JobSpec) {}},
		{"paper-scale grid", func(s *JobSpec) {
			s.SizesBytes = repeatInt64(8192, 11)
			s.CyclesNS = repeatInt64(20, 10)
			s.Refs = 2_000_000
		}},
		{"unlimited lenient", func(s *JobSpec) { s.TracePath = "t.trace"; s.Lenient = -1 }},
		{"at the refs bound", func(s *JobSpec) { s.Refs = MaxRefs }},
		{"at the deadline bound", func(s *JobSpec) { s.DeadlineSec = MaxDeadlineSec }},
		{"with a deadline", func(s *JobSpec) { s.DeadlineSec = 30 }},
	}
	for _, tc := range cases {
		spec := boundTestSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: Validate rejected a legitimate spec: %v", tc.name, err)
		}
	}
}

package coord_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlcache/internal/coord"
	"mlcache/internal/coord/chaos"
	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/store"
	"mlcache/internal/sweep"
	"mlcache/internal/trace"
)

// Artifact-distribution chaos tests: the workers share no filesystem with
// the coordinator — the job names its trace only by digest, and each
// worker must fetch it from the coordinator's /artifacts/ endpoint into
// its own cache before it can simulate. The invariant is unchanged from
// the protocol chaos tests: whatever the transfer schedule does (drops,
// torn bodies, throttling, a worker killed mid-download), the merged CSV
// is byte-identical to a single-process run over the same artifact.

// publishArtifact materializes the chaos workload into an .mlca artifact
// and returns its path, digest, and header CRC.
func publishArtifact(t *testing.T, refs int64) (string, store.Digest, uint32) {
	t.Helper()
	arena, err := trace.Materialize(experiments.Options{Seed: 1, Refs: refs}.Stream())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "workload.mlca")
	if err := trace.WriteArtifact(path, arena); err != nil {
		t.Fatal(err)
	}
	d, _, err := store.DigestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crc, err := trace.ArtifactChecksum(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, d, crc
}

// artifactFleetWorker is a fleetWorker plus transfer knobs.
type artifactFleetWorker struct {
	fleetWorker
	throttleBPS int64
	cacheBytes  int64 // 0 = default budget
}

// runArtifactFleet is runFleet with the store mounted: the coordinator
// serves its artifact at /artifacts/ (counting GETs), and every worker
// gets a private cache directory — no path in the JobSpec, no shared
// disk. Returns the merged CSV, per-point merge counts, artifact GET
// count, and each worker's cache for post-run inspection.
func runArtifactFleet(t *testing.T, cfg coord.Config, src store.Resolver, fleet []artifactFleetWorker) (string, map[string]int, int64, []*store.Cache) {
	t.Helper()
	var mergeMu sync.Mutex
	merges := map[string]int{}
	cfg.OnResult = func(pt sweep.Point, run cpu.Result) {
		mergeMu.Lock()
		merges[pt.String()]++
		mergeMu.Unlock()
	}
	c, err := coord.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gets atomic.Int64
	storeHandler := &store.Handler{Source: src}
	root := http.NewServeMux()
	root.Handle(store.PathArtifacts, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			gets.Add(1)
		}
		storeHandler.ServeHTTP(w, r)
	}))
	root.Handle("/", c.Handler())
	srv := httptest.NewServer(root)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	go c.Run(ctx)

	caches := make([]*store.Cache, len(fleet))
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	for i, fw := range fleet {
		cache, err := store.NewCache(t.TempDir(), fw.cacheBytes)
		if err != nil {
			t.Fatal(err)
		}
		caches[i] = cache
		wctx, wcancel := context.WithCancel(ctx)
		defer wcancel()
		tr := &chaos.Transport{Rules: fw.rules}
		if fw.kill {
			tr.OnFire = func(chaos.Rule, *http.Request) { wcancel() }
		}
		w := &coord.Worker{
			ID:               fw.id,
			Coordinator:      srv.URL,
			Client:           &http.Client{Transport: tr},
			Parallelism:      1,
			Artifacts:        cache,
			FetchThrottleBPS: fw.throttleBPS,
			Logf:             t.Logf,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(wctx)
		}(i)
	}

	if err := c.Wait(ctx); err != nil {
		done, total := c.Done()
		t.Fatalf("grid never completed (%d/%d points): %v", done, total, err)
	}
	wg.Wait()
	for i, fw := range fleet {
		if !fw.kill && errs[i] != nil {
			t.Errorf("worker %s exited with error: %v", fw.id, errs[i])
		}
	}
	mergeMu.Lock()
	defer mergeMu.Unlock()
	counts := make(map[string]int, len(merges))
	for k, v := range merges {
		counts[k] = v
	}
	return renderCSV(t, c.Results()), counts, gets.Load(), caches
}

// artifactChaosSpecs returns the distributed (digest-only) spec and the
// single-process reference spec (path-only) over the same artifact.
func artifactChaosSpecs(path string, d store.Digest, crc uint32) (coord.JobSpec, coord.JobSpec) {
	spec := chaosSpec()
	spec.Refs = 0
	spec.Seed = 0
	dist := spec
	dist.ArtifactDigest = d.String()
	dist.ArtifactCRC = crc
	ref := spec
	ref.TracePath = path
	return dist, ref
}

func TestArtifactDistributionMatchesSingleProcess(t *testing.T) {
	path, d, crc := publishArtifact(t, 20000)
	dist, ref := artifactChaosSpecs(path, d, crc)
	want := renderCSV(t, referenceRun(t, ref))

	got, counts, gets, caches := runArtifactFleet(t,
		coord.Config{Job: dist, Shards: 3, LeaseTTL: 2 * time.Second},
		store.Static{d: path},
		[]artifactFleetWorker{
			{fleetWorker: fleetWorker{id: "w1"}},
			{fleetWorker: fleetWorker{id: "w2"}},
		})
	if got != want {
		t.Errorf("distributed-over-store CSV differs from single-process run:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	assertMergedOnce(t, dist, counts, nil)
	// One download per worker: each fetched once into its private cache.
	if gets != 2 {
		t.Errorf("%d artifact GETs, want 2 (one per worker)", gets)
	}
	for i, cache := range caches {
		if _, ok := cache.Path(d); !ok {
			t.Errorf("worker %d cache does not hold the artifact after the run", i)
		}
	}
}

func TestArtifactDistributionSurvivesTornAndSlowTransfers(t *testing.T) {
	path, d, crc := publishArtifact(t, 20000)
	dist, ref := artifactChaosSpecs(path, d, crc)
	want := renderCSV(t, referenceRun(t, ref))

	// w1's first download tears mid-body (the retry must resume with a
	// Range request, and the spliced file must still verify); w2's
	// transfers crawl behind a throttle and a delay.
	got, counts, _, _ := runArtifactFleet(t,
		coord.Config{Job: dist, Shards: 3, LeaseTTL: 2 * time.Second},
		store.Static{d: path},
		[]artifactFleetWorker{
			{fleetWorker: fleetWorker{id: "w1", rules: []chaos.Rule{
				{Prefix: store.PathArtifacts, From: 1, Mode: chaos.Torn},
			}}},
			{fleetWorker: fleetWorker{id: "w2", rules: []chaos.Rule{
				{Prefix: store.PathArtifacts, From: 1, To: -1, Mode: chaos.Delay, Delay: 100 * time.Millisecond},
			}}, throttleBPS: 1 << 20},
		})
	if got != want {
		t.Errorf("CSV under torn/slow transfers differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	assertMergedOnce(t, dist, counts, nil)
}

func TestArtifactDistributionSurvivesDroppedTransfers(t *testing.T) {
	path, d, crc := publishArtifact(t, 20000)
	dist, ref := artifactChaosSpecs(path, d, crc)
	want := renderCSV(t, referenceRun(t, ref))

	// Both workers lose their first two download attempts outright; the
	// store client's backoff retries carry them through.
	rules := []chaos.Rule{{Prefix: store.PathArtifacts, From: 1, To: 2, Mode: chaos.Drop}}
	got, counts, _, _ := runArtifactFleet(t,
		coord.Config{Job: dist, Shards: 3, LeaseTTL: 2 * time.Second},
		store.Static{d: path},
		[]artifactFleetWorker{
			{fleetWorker: fleetWorker{id: "w1", rules: rules}},
			{fleetWorker: fleetWorker{id: "w2", rules: rules}},
		})
	if got != want {
		t.Errorf("CSV under dropped transfers differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	assertMergedOnce(t, dist, counts, nil)
}

func TestArtifactDistributionSurvivesWorkerKilledMidFetch(t *testing.T) {
	path, d, crc := publishArtifact(t, 20000)
	dist, ref := artifactChaosSpecs(path, d, crc)
	want := renderCSV(t, referenceRun(t, ref))

	// w1 dies the instant it touches the artifact endpoint — before it
	// ever leases a shard. The grid must complete entirely on w2, and
	// w1's cache directory must hold no committed object.
	got, counts, _, caches := runArtifactFleet(t,
		coord.Config{
			Job: dist, Shards: 3,
			LeaseTTL: 300 * time.Millisecond, Heartbeat: 60 * time.Millisecond,
			RetryBase: 50 * time.Millisecond, RetryMax: 500 * time.Millisecond,
		},
		store.Static{d: path},
		[]artifactFleetWorker{
			{fleetWorker: fleetWorker{id: "w1", kill: true, rules: []chaos.Rule{
				{Prefix: store.PathArtifacts, From: 1, To: -1, Mode: chaos.Down},
			}}},
			{fleetWorker: fleetWorker{id: "w2"}},
		})
	if got != want {
		t.Errorf("CSV after worker killed mid-fetch differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	assertMergedOnce(t, dist, counts, nil)
	if _, ok := caches[0].Path(d); ok {
		t.Error("killed worker's cache committed an object it never verified")
	}
}

func TestWorkerWithoutCacheRejectsDigestJob(t *testing.T) {
	path, d, crc := publishArtifact(t, 5000)
	dist, _ := artifactChaosSpecs(path, d, crc)
	if err := dist.Validate(); err != nil {
		t.Fatal(err)
	}
	// NewRunner on an unresolved digest-only spec must fail loudly, not
	// fall back to a synthetic workload.
	if _, _, err := dist.NewRunner(); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("NewRunner on digest-only spec: %v", err)
	}
}

package coord

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlcache/internal/cpu"
	"mlcache/internal/sweep"
)

// State-machine tests drive the coordinator directly (no HTTP, no
// simulations) under a fake clock, so lease expiry, backoff, exclusion,
// and speculation are tested deterministically.

func stateTestSpec() JobSpec {
	return JobSpec{
		SizesBytes: []int64{8192, 16384, 32768},
		CyclesNS:   []int64{20, 30},
		Assoc:      1,
		L1KB:       4,
		Refs:       1000,
		Seed:       1,
	} // 6 grid points
}

type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testCoord(t *testing.T, cfg Config) (*Coordinator, *fakeClock) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c.now = clk.now
	return c, clk
}

func mustLease(t *testing.T, c *Coordinator, worker string) LeaseResponse {
	t.Helper()
	lr, err := c.Lease(LeaseRequest{Worker: worker})
	if err != nil {
		t.Fatalf("lease for %s: %v", worker, err)
	}
	return lr
}

func shardResults(c *Coordinator, shard int) []PointResult {
	var out []PointResult
	for i := shard; i < len(c.pts); i += c.cfg.Shards {
		out = append(out, PointResult{Index: i})
	}
	return out
}

func TestLeaseGrantIsIdempotent(t *testing.T) {
	c, _ := testCoord(t, Config{Job: stateTestSpec(), Shards: 2, LeaseTTL: time.Second})
	a := mustLease(t, c, "w1")
	if a.Done || a.WaitMS > 0 {
		t.Fatalf("first lease = %+v, want a grant", a)
	}
	b := mustLease(t, c, "w1")
	if b.Shard != a.Shard || b.Lease != a.Lease {
		t.Fatalf("re-lease = %+v, want the outstanding grant %+v", b, a)
	}
	// A second worker gets the other shard, not a duplicate.
	w2 := mustLease(t, c, "w2")
	if w2.Shard == a.Shard {
		t.Fatalf("w2 granted w1's shard %d", a.Shard)
	}
}

func TestLeaseExpiryExcludesAndBacksOff(t *testing.T) {
	cfg := Config{
		Job: stateTestSpec(), Shards: 2,
		LeaseTTL: time.Second, RetryBase: 200 * time.Millisecond, RetryMax: time.Second,
		SpeculateAfter: -1,
	}
	c, clk := testCoord(t, cfg)
	a := mustLease(t, c, "w1")

	// TTL passes with no heartbeat: the shard is reassignable, but not to
	// w1 (excluded) and not before the backoff gate.
	clk.advance(1100 * time.Millisecond)
	b := mustLease(t, c, "w2")
	if b.Shard == a.Shard {
		t.Fatalf("w2 got shard %d before its retry backoff elapsed", a.Shard)
	}
	// Past the worst-case first backoff (base + 50%), a fresh worker gets
	// the failed shard; w1 stays excluded while others are live.
	clk.advance(400 * time.Millisecond)
	w1again := mustLease(t, c, "w1")
	if !w1again.Done && w1again.WaitMS == 0 && w1again.Shard == a.Shard {
		t.Fatalf("excluded worker w1 was re-granted shard %d while w2/w3 are live", a.Shard)
	}
	w3 := mustLease(t, c, "w3")
	if w3.WaitMS > 0 || w3.Shard != a.Shard {
		t.Fatalf("w3 lease = %+v, want the expired shard %d", w3, a.Shard)
	}
	if w3.Lease == a.Lease {
		t.Fatal("reassigned shard kept the old fencing token")
	}
}

func TestExpiredLeaseHeartbeatCancels(t *testing.T) {
	c, clk := testCoord(t, Config{Job: stateTestSpec(), Shards: 2, LeaseTTL: time.Second})
	a := mustLease(t, c, "w1")
	hb, err := c.Heartbeat(HeartbeatRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease})
	if err != nil || hb.Cancel {
		t.Fatalf("live heartbeat = %+v, %v; want no cancel", hb, err)
	}
	clk.advance(2 * time.Second)
	hb, err = c.Heartbeat(HeartbeatRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease})
	if err != nil || !hb.Cancel {
		t.Fatalf("post-expiry heartbeat = %+v, %v; want cancel", hb, err)
	}
}

func TestReleaseReassignsImmediatelyAndRelaxesExclusion(t *testing.T) {
	cfg := Config{
		Job: stateTestSpec(), Shards: 2,
		LeaseTTL: time.Minute, RetryBase: 100 * time.Millisecond, RetryMax: time.Second,
		SpeculateAfter: -1,
	}
	c, clk := testCoord(t, cfg)
	a := mustLease(t, c, "w1")
	if _, err := c.Release(ReleaseRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease, Reason: "poison point"}); err != nil {
		t.Fatal(err)
	}
	// w1 is excluded from the released shard, so it gets the other one.
	b := mustLease(t, c, "w1")
	if b.Shard == a.Shard {
		t.Fatalf("releasing worker was immediately re-granted shard %d", a.Shard)
	}
	// w1 is the only live worker; once the backoff passes, exclusion must
	// relax rather than stall the grid. (Finish shard b first so w1 is
	// idle.)
	if _, err := c.Complete(CompleteRequest{Worker: "w1", Shard: b.Shard, Lease: b.Lease, Results: shardResults(c, b.Shard)}); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	again := mustLease(t, c, "w1")
	if again.WaitMS > 0 || again.Done || again.Shard != a.Shard {
		t.Fatalf("lone worker lease = %+v, want relaxed re-grant of shard %d", again, a.Shard)
	}
}

func TestFirstWriterWinsNoDoubleCount(t *testing.T) {
	merged := map[string]int{}
	c, err := New(Config{
		Job: stateTestSpec(), Shards: 1, LeaseTTL: time.Minute,
		OnResult: func(pt sweep.Point, _ cpu.Result) { merged[pt.String()]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	c.now = clk.now
	a := mustLease(t, c, "w1")

	// The same point arrives via heartbeat twice, then again in the final
	// upload: merged exactly once.
	one := []PointResult{{Index: 0}}
	for i := 0; i < 2; i++ {
		if _, err := c.Heartbeat(HeartbeatRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease, Done: one}); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-range and negative indices are discarded, not merged.
	if _, err := c.Heartbeat(HeartbeatRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease,
		Done: []PointResult{{Index: 100}, {Index: -1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(CompleteRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease, Results: shardResults(c, a.Shard)}); err != nil {
		t.Fatal(err)
	}
	// Replayed complete (lost response, client retried): still once each.
	if _, err := c.Complete(CompleteRequest{Worker: "w1", Shard: a.Shard, Lease: a.Lease, Results: shardResults(c, a.Shard)}); err != nil {
		t.Fatal(err)
	}
	if len(merged) != 6 {
		t.Fatalf("merged %d distinct points, want 6", len(merged))
	}
	for pt, n := range merged {
		if n != 1 {
			t.Errorf("point %s merged %d times, want exactly once", pt, n)
		}
	}
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("grid not done after full upload: %v", err)
	}
}

func TestCompleteFromNeverLeasedWorkerRejected(t *testing.T) {
	c, _ := testCoord(t, Config{Job: stateTestSpec(), Shards: 2, LeaseTTL: time.Minute})
	_, err := c.Complete(CompleteRequest{Worker: "intruder", Shard: 0, Lease: 99, Results: shardResults(c, 0)})
	var he *httpError
	if !errors.As(err, &he) || he.code != 409 {
		t.Fatalf("complete from never-leased worker: err = %v, want 409", err)
	}
	if done, _ := c.Done(); done != 0 {
		t.Fatalf("rejected upload still merged %d points", done)
	}
}

func TestSpeculativeLeaseFirstWriterWins(t *testing.T) {
	c, clk := testCoord(t, Config{
		Job: stateTestSpec(), Shards: 1,
		LeaseTTL: time.Minute, SpeculateAfter: 500 * time.Millisecond,
	})
	a := mustLease(t, c, "slow")
	// Too early to speculate: the idle worker waits.
	if lr := mustLease(t, c, "fast"); lr.WaitMS == 0 {
		t.Fatalf("speculation before SpeculateAfter: %+v", lr)
	}
	clk.advance(600 * time.Millisecond)
	b := mustLease(t, c, "fast")
	if b.WaitMS > 0 || b.Shard != a.Shard || b.Lease == a.Lease {
		t.Fatalf("speculative lease = %+v, want duplicate of shard %d under a new token", b, a.Shard)
	}
	// The speculative twin finishes first; the straggler is cancelled.
	if _, err := c.Complete(CompleteRequest{Worker: "fast", Shard: b.Shard, Lease: b.Lease, Results: shardResults(c, b.Shard)}); err != nil {
		t.Fatal(err)
	}
	hb, err := c.Heartbeat(HeartbeatRequest{Worker: "slow", Shard: a.Shard, Lease: a.Lease})
	if err != nil || !hb.Cancel {
		t.Fatalf("straggler heartbeat = %+v, %v; want cancel", hb, err)
	}
	if lr := mustLease(t, c, "slow"); !lr.Done {
		t.Fatalf("post-completion lease = %+v, want done", lr)
	}
}

func TestPriorResultsSeedShards(t *testing.T) {
	prior := map[int]cpu.Result{}
	for i := 0; i < 6; i++ {
		prior[i] = cpu.Result{TimeNS: int64(1000 + i)}
	}
	c, _ := testCoord(t, Config{Job: stateTestSpec(), Shards: 3, LeaseTTL: time.Minute, Prior: prior})
	if err := c.Wait(context.Background()); err != nil {
		t.Fatalf("fully seeded grid not born done: %v", err)
	}
	for i, r := range c.Results() {
		if !r.Skipped || r.Run.TimeNS != int64(1000+i) {
			t.Fatalf("result %d = %+v, want prior-seeded ckpt result", i, r)
		}
	}
	if lr := mustLease(t, c, "w1"); !lr.Done {
		t.Fatalf("lease on seeded grid = %+v, want done", lr)
	}
}

func TestBackoffIsCappedWithBoundedJitter(t *testing.T) {
	c, _ := testCoord(t, Config{
		Job: stateTestSpec(), Shards: 1,
		RetryBase: 100 * time.Millisecond, RetryMax: time.Second,
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	prevMin := time.Duration(0)
	for attempts := 1; attempts <= 40; attempts++ {
		d := c.backoffLocked(attempts)
		if d > time.Second+time.Second/2 {
			t.Fatalf("attempt %d: backoff %v exceeds cap + 50%% jitter", attempts, d)
		}
		base := 100 * time.Millisecond << (attempts - 1)
		if attempts > 4 {
			base = time.Second
		}
		if d < base {
			t.Fatalf("attempt %d: backoff %v below deterministic floor %v", attempts, d, base)
		}
		if base > prevMin {
			prevMin = base
		}
	}
}

// TestJobSpecPlan: the plan field is vetted at the trust boundary (a
// worker or service rejects a bad spec instead of silently planning
// differently) and threaded into the runner every front end shares.
func TestJobSpecPlan(t *testing.T) {
	spec := stateTestSpec()
	spec.Plan = "bogus"
	if err := spec.Validate(); err == nil {
		t.Error("bogus plan accepted")
	}
	spec.Plan = "onepass"
	if err := spec.Validate(); err != nil {
		t.Errorf("onepass rejected: %v", err)
	}
	if r := spec.RunnerFor(nil); r.Plan != sweep.PlanOnePass {
		t.Errorf("RunnerFor plan = %v, want onepass", r.Plan)
	}
	spec.Plan = ""
	if r := spec.RunnerFor(nil); r.Plan != sweep.PlanFull {
		t.Errorf("empty plan = %v, want full", r.Plan)
	}
}

package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve of a Chart.
type Series struct {
	Name  string
	Glyph rune
	X     []float64
	Y     []float64
}

// Chart renders curves on a character grid with a log2 X axis (cache
// sizes) and a linear or log10 Y axis (miss ratios plot best with LogY).
type Chart struct {
	Width  int // plot columns (default 56)
	Height int // plot rows (default 14)
	LogY   bool
	Series []Series
}

func (c Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 14
	}
	return w, h
}

// Render writes the chart. Series points with non-positive coordinates on
// a log axis are skipped.
func (c Chart) Render(out io.Writer) error {
	w, h := c.dims()

	xOK := func(x float64) bool { return x > 0 }
	yOK := func(y float64) bool { return !c.LogY || y > 0 }
	xT := math.Log2
	yT := func(y float64) float64 {
		if c.LogY {
			return math.Log10(y)
		}
		return y
	}

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) || !xOK(s.X[i]) || !yOK(s.Y[i]) {
				continue
			}
			points++
			minX = math.Min(minX, xT(s.X[i]))
			maxX = math.Max(maxX, xT(s.X[i]))
			minY = math.Min(minY, yT(s.Y[i]))
			maxY = math.Max(maxY, yT(s.Y[i]))
		}
	}
	if points == 0 {
		return fmt.Errorf("report: chart has no plottable points")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		for i := range s.X {
			if i >= len(s.Y) || !xOK(s.X[i]) || !yOK(s.Y[i]) {
				continue
			}
			col := int(math.Round((xT(s.X[i]) - minX) / (maxX - minX) * float64(w-1)))
			row := int(math.Round((yT(s.Y[i]) - minY) / (maxY - minY) * float64(h-1)))
			r := h - 1 - row // top row is max Y
			if grid[r][col] != ' ' && grid[r][col] != glyph {
				grid[r][col] = '@' // overlapping series
			} else {
				grid[r][col] = glyph
			}
		}
	}

	label := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%9.2g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < h; r++ {
		axis := strings.Repeat(" ", 9)
		if r == 0 {
			axis = label(maxY)
		}
		if r == h-1 {
			axis = label(minY)
		}
		if _, err := fmt.Fprintf(out, "%s |%s\n", axis, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(out, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", w)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "%s  %-*s%s\n", strings.Repeat(" ", 9), w-10,
		fmt.Sprintf("%.0f", math.Pow(2, minX)), fmt.Sprintf("%10.0f", math.Pow(2, maxX))); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for _, s := range c.Series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = '*'
		}
		legend = append(legend, fmt.Sprintf("%c %s", glyph, s.Name))
	}
	_, err := fmt.Fprintf(out, "%s  x: log2  legend: %s\n", strings.Repeat(" ", 9), strings.Join(legend, ", "))
	return err
}

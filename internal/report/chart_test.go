package report

import (
	"strings"
	"testing"
)

func TestChartRender(t *testing.T) {
	c := Chart{
		Width:  40,
		Height: 10,
		LogY:   true,
		Series: []Series{
			{
				Name:  "solo",
				Glyph: 's',
				X:     []float64{8192, 16384, 32768, 65536},
				Y:     []float64{0.05, 0.035, 0.025, 0.017},
			},
			{
				Name:  "global",
				Glyph: 'g',
				X:     []float64{8192, 16384, 32768, 65536},
				Y:     []float64{0.033, 0.026, 0.020, 0.015},
			},
		},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "s") || !strings.Contains(out, "g") {
		t.Errorf("series glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "legend: s solo, g global") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "8192") || !strings.Contains(out, "65536") {
		t.Errorf("x labels missing:\n%s", out)
	}
	// 10 plot rows + axis + x labels + legend.
	if lines := strings.Count(out, "\n"); lines != 13 {
		t.Errorf("line count = %d, want 13:\n%s", lines, out)
	}
}

func TestChartCornerPlacement(t *testing.T) {
	// Two points: (1, 0) and (2, 1) on a linear Y axis must land in
	// opposite corners.
	c := Chart{
		Width:  10,
		Height: 5,
		Series: []Series{{Name: "p", Glyph: 'p', X: []float64{1, 2}, Y: []float64{0, 1}}},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	top, bottom := lines[0], lines[4]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "p") {
		t.Errorf("max point not in top-right: %q", top)
	}
	if !strings.Contains(bottom, "|p") {
		t.Errorf("min point not at bottom-left: %q", bottom)
	}
}

func TestChartOverlapMarker(t *testing.T) {
	c := Chart{
		Width:  8,
		Height: 4,
		Series: []Series{
			{Name: "a", Glyph: 'a', X: []float64{1, 2}, Y: []float64{0, 1}},
			{Name: "b", Glyph: 'b', X: []float64{1, 2}, Y: []float64{0, 1}},
		},
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "@") {
		t.Errorf("overlap marker missing:\n%s", sb.String())
	}
}

func TestChartNoPoints(t *testing.T) {
	c := Chart{LogY: true, Series: []Series{{Name: "empty", X: []float64{1}, Y: []float64{0}}}}
	var sb strings.Builder
	if err := c.Render(&sb); err == nil {
		t.Error("chart with no plottable points accepted")
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// A single point must still render (ranges padded).
	c := Chart{Series: []Series{{Name: "one", X: []float64{4}, Y: []float64{2}}}}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("default glyph missing")
	}
}

// Package report renders experiment results as aligned ASCII tables, text
// contour/region maps of the (size, cycle time) design space, and CSV for
// external plotting. All experiment drivers and CLIs share these renderers
// so the paper's figures come out in one consistent format.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var sb strings.Builder
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", wd, c)
		}
		sb.WriteString("\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if err := line(t.header); err != nil {
		return err
	}
	rule := make([]string, len(widths))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table in comma-separated form (no quoting; intended for
// numeric experiment data).
func (t *Table) CSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.header, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SizeLabel renders a byte count as the paper's axis labels: "8", "512",
// "4096" (KB implied) below 1 MB granularity handled in KB.
func SizeLabel(bytes int64) string {
	return fmt.Sprintf("%d", bytes/1024)
}

// RegionMap renders a character map of the design space: rows are cycle
// times (top = slowest, matching the paper's Y axis), columns are sizes.
// values[i][j] is indexed by size i, cycle j; each cell is classified by
// classify into a rune.
type RegionMap struct {
	SizesBytes []int64
	CyclesNS   []int64
	CPUCycleNS int64
	// Cell returns the rune for the cell at size index i, cycle index j.
	Cell func(i, j int) rune
}

// Render writes the map with axis labels.
func (m RegionMap) Render(w io.Writer) error {
	for j := len(m.CyclesNS) - 1; j >= 0; j-- {
		cycles := float64(m.CyclesNS[j]) / float64(m.CPUCycleNS)
		if _, err := fmt.Fprintf(w, "%5.1f cyc |", cycles); err != nil {
			return err
		}
		for i := range m.SizesBytes {
			if _, err := fmt.Fprintf(w, " %c", m.Cell(i, j)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s+%s\n", "", strings.Repeat("--", len(m.SizesBytes))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10s ", "KB:"); err != nil {
		return err
	}
	for _, s := range m.SizesBytes {
		lbl := SizeLabel(s)
		if _, err := fmt.Fprintf(w, "%s ", lastChar(lbl)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	if err != nil {
		return err
	}
	// Full labels on a second line, since single characters are ambiguous.
	_, err = fmt.Fprintf(w, "%10s %s\n", "sizes:", joinSizes(m.SizesBytes))
	return err
}

func lastChar(s string) string { return s[len(s)-1:] }

func joinSizes(sizes []int64) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = SizeLabel(s)
	}
	return strings.Join(parts, " ")
}

// SlopeGlyph maps a slope-region index (see contour.Region) to the glyphs
// used in the figure renderings: '.' flat, '+', 'x', '#' steepest.
func SlopeGlyph(region int) rune {
	glyphs := []rune{'.', '+', 'x', '#'}
	if region < 0 {
		region = 0
	}
	if region >= len(glyphs) {
		region = len(glyphs) - 1
	}
	return glyphs[region]
}

// Ratio formats a miss ratio with sensible precision.
func Ratio(r float64) string {
	switch {
	case r == 0:
		return "0"
	case r < 0.001:
		return fmt.Sprintf("%.5f", r)
	default:
		return fmt.Sprintf("%.4f", r)
	}
}

// NS formats a nanosecond quantity, using "inf" for unbounded values.
func NS(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.1f", v)
}

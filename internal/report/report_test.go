package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("size", "miss ratio")
	tb.AddRow("8", "0.0450")
	tb.AddRow("4096", "0.0039")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "size") || !strings.Contains(lines[0], "miss ratio") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
	// Columns align: all lines equal length.
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Errorf("line %d length %d != header %d", i, len(lines[i]), len(lines[0]))
		}
	}
}

func TestTableExtraAndMissingCells(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2", "3") // extra dropped
	tb.AddRow("1")           // missing rendered empty
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "3") {
		t.Error("extra cell not dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1", "2")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestSizeLabel(t *testing.T) {
	if got := SizeLabel(512 * 1024); got != "512" {
		t.Errorf("SizeLabel = %q, want 512", got)
	}
	if got := SizeLabel(4 << 20); got != "4096" {
		t.Errorf("SizeLabel = %q, want 4096", got)
	}
}

func TestRegionMapRender(t *testing.T) {
	m := RegionMap{
		SizesBytes: []int64{8 * 1024, 16 * 1024, 32 * 1024},
		CyclesNS:   []int64{10, 20},
		CPUCycleNS: 10,
		Cell: func(i, j int) rune {
			return SlopeGlyph(i) // varies by size only
		},
	}
	var sb strings.Builder
	if err := m.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2.0 cyc") || !strings.Contains(out, "1.0 cyc") {
		t.Errorf("cycle labels missing:\n%s", out)
	}
	if !strings.Contains(out, ". + x") {
		t.Errorf("cells missing:\n%s", out)
	}
	if !strings.Contains(out, "8 16 32") {
		t.Errorf("size labels missing:\n%s", out)
	}
	// Y axis is top-down from slowest: "2.0 cyc" line above "1.0 cyc".
	if strings.Index(out, "2.0 cyc") > strings.Index(out, "1.0 cyc") {
		t.Error("cycle rows not descending")
	}
}

func TestSlopeGlyph(t *testing.T) {
	if SlopeGlyph(0) != '.' || SlopeGlyph(1) != '+' || SlopeGlyph(2) != 'x' || SlopeGlyph(3) != '#' {
		t.Error("glyphs wrong")
	}
	if SlopeGlyph(-1) != '.' || SlopeGlyph(99) != '#' {
		t.Error("out-of-range glyphs not clamped")
	}
}

func TestRatioFormat(t *testing.T) {
	if Ratio(0) != "0" {
		t.Error("Ratio(0)")
	}
	if got := Ratio(0.05); got != "0.0500" {
		t.Errorf("Ratio(0.05) = %q", got)
	}
	if got := Ratio(0.0002); got != "0.00020" {
		t.Errorf("Ratio(0.0002) = %q", got)
	}
}

func TestNSFormat(t *testing.T) {
	if got := NS(12.34); got != "12.3" {
		t.Errorf("NS = %q", got)
	}
	if got := NS(math.Inf(1)); got != "inf" {
		t.Errorf("NS(inf) = %q", got)
	}
}

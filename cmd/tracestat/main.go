// Command tracestat measures the locality statistics of a reference trace:
// the reference mix, and solo read miss ratios across a range of cache
// sizes, with the per-doubling miss reduction factor (the paper reports
// ≈0.69 for its traces). It reads a trace file (text, binary, or mmap
// artifact codec, by suffix) or generates the default synthetic workload.
//
// Usage:
//
//	tracestat [-n refs] [-seed s] [-trace file] [-assoc a] [-block b]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"

	"mlcache/internal/cache"
	"mlcache/internal/classify"
	"mlcache/internal/stackdist"
	"mlcache/internal/synth"
	"mlcache/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")
	var (
		n         = flag.Int64("n", 2_000_000, "references to analyze")
		seed      = flag.Int64("seed", 1, "seed for the synthetic workload")
		traceFile = flag.String("trace", "", "trace file to read (default: synthetic workload)")
		assoc     = flag.Int("assoc", 1, "associativity of the probe caches")
		block     = flag.Int("block", 32, "block size of the probe caches")
		minKB     = flag.Int64("min", 4, "smallest probe cache in KB")
		maxKB     = flag.Int64("max", 4096, "largest probe cache in KB")
		procs     = flag.Int("procs", 0, "override: number of synthetic processes")
		irun      = flag.Float64("irun", 0, "override: mean instruction run words")
		drun      = flag.Float64("drun", 0, "override: mean data run words")
		dataProb  = flag.Float64("dataprob", -1, "override: data reference probability")
		alpha     = flag.Float64("alpha", 0, "override: Pareto tail exponent")
		doClass   = flag.Bool("classify", false, "decompose probe-cache misses into compulsory/capacity/conflict")
		doProfile = flag.Bool("profile", false, "one-pass LRU stack-distance profile instead of probe caches")
		csv       = flag.Bool("csv", false, "with -profile: dump the stack-distance histogram as CSV (distance, count, cumulative miss ratio)")
	)
	flag.Parse()

	var s trace.Stream
	if *traceFile != "" {
		ts, closer, err := trace.OpenPath(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		s = ts
	} else {
		mix := synth.PaperMix(*seed)
		if *procs > 0 {
			mix.Processes = mix.Processes[:*procs]
		}
		for i := range mix.Processes {
			p := &mix.Processes[i]
			if *irun > 0 {
				p.MeanIRunWords = *irun
			}
			if *drun > 0 {
				p.MeanDRunWords = *drun
			}
			if *dataProb >= 0 {
				p.DataRefProb = *dataProb
			}
			if *alpha > 0 {
				p.Code.Alpha, p.Data.Alpha = *alpha, *alpha
			}
		}
		s = trace.Limit(synth.MustNewMix(mix), *n)
	}
	s = trace.Limit(s, *n)

	switch {
	case *doProfile && *csv:
		runProfileCSV(s, *block)
	case *doProfile:
		runProfile(s, *block, *minKB, *maxKB)
	case *doClass:
		runClassify(s, *block, *assoc, *minKB, *maxKB)
	default:
		runProbes(s, *n, *block, *assoc, *minKB, *maxKB)
	}
}

// runProbes simulates one probe cache per size and prints the miss curve.
func runProbes(s trace.Stream, n int64, block, assoc int, minKB, maxKB int64) {
	var probes []*cache.Cache
	for kb := minKB; kb <= maxKB; kb *= 2 {
		probes = append(probes, cache.MustNew(cache.Config{
			Name:       fmt.Sprintf("%dKB", kb),
			SizeBytes:  kb * 1024,
			BlockBytes: block,
			Assoc:      assoc,
			Repl:       cache.LRU,
			Write:      cache.WriteBack,
			Alloc:      cache.WriteAllocate,
		}))
	}

	var counts trace.Counts
	var refs int64
	warm := n / 5
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		refs++
		if refs == warm {
			for _, p := range probes {
				p.ResetStats()
			}
		}
		counts.Add(r.Kind)
		for _, p := range probes {
			p.Access(r.Addr, r.Kind == trace.Store)
		}
	}

	printMix(counts)
	fmt.Printf("measured after %d-reference warm-up\n\n", warm)
	fmt.Printf("%-10s %12s %12s %10s\n", "cache", "read refs", "read misses", "miss ratio")
	var prev float64
	var factors []float64
	for _, p := range probes {
		st := p.Stats()
		m := st.LocalReadMissRatio()
		note := ""
		if prev > 0 && m > 0 {
			f := m / prev
			factors = append(factors, f)
			note = fmt.Sprintf("  x%.3f", f)
		}
		fmt.Printf("%-10s %12d %12d %10.5f%s\n", p.Config().Name, st.ReadRefs, st.ReadMisses, m, note)
		prev = m
	}
	if len(factors) > 0 {
		prod := 1.0
		for _, f := range factors {
			prod *= f
		}
		fmt.Printf("\ngeometric-mean miss reduction per doubling: %.3f (paper: ~0.69)\n",
			math.Pow(prod, 1/float64(len(factors))))
	}
}

// runProfile computes the whole miss curve in one pass over the trace
// (Mattson's technique), instead of one probe cache per size.
func runProfile(s trace.Stream, block int, minKB, maxKB int64) {
	prof := stackdist.MustNew(block)
	var counts trace.Counts
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		counts.Add(r.Kind)
		if r.Kind.IsRead() {
			prof.Access(r.Addr)
		}
	}
	printMix(counts)
	fmt.Printf("one-pass LRU profile of the read stream (%d distinct %dB blocks, %d compulsory)\n\n",
		prof.DistinctBlocks(), block, prof.Cold())
	fmt.Printf("%-10s %12s %10s\n", "capacity", "misses", "miss ratio")
	sizes, ratios := prof.Curve(block, minKB*1024, maxKB*1024)
	for i, sz := range sizes {
		fmt.Printf("%-10s %12d %10.5f\n", fmt.Sprintf("%dKB", sz/1024),
			prof.MissesAtCapacity(sz/int64(block)), ratios[i])
	}
}

// runProfileCSV dumps the raw stack-distance histogram for offline
// analysis: one row per nonzero distance bin with its reference count and
// the cumulative miss ratio — the fraction of references that would miss
// a fully-associative LRU cache holding `distance` blocks. Distances
// beyond the exact-tracking window report their log2 bucket's upper
// bound, so the cumulative column stays a valid (conservative) miss
// curve. Cold (compulsory) references have no finite distance; they get
// a final "cold" row with their count and an empty ratio column.
func runProfileCSV(s trace.Stream, block int) {
	prof := stackdist.MustNew(block)
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if r.Kind.IsRead() {
			prof.Access(r.Addr)
		}
	}
	fmt.Println("distance,count,cum_miss_ratio")
	for _, b := range prof.Histogram() {
		fmt.Printf("%d,%d,%.6f\n", b.Hi, b.Count, prof.MissRatioAtCapacity(b.Hi))
	}
	fmt.Printf("cold,%d,\n", prof.Cold())
}

// runClassify decomposes each probe cache's misses into the three Cs.
func runClassify(s trace.Stream, block, assoc int, minKB, maxKB int64) {
	var cls []*classify.Classifier
	for kb := minKB; kb <= maxKB; kb *= 2 {
		cls = append(cls, classify.MustNew(cache.Config{
			Name:       fmt.Sprintf("%dKB", kb),
			SizeBytes:  kb * 1024,
			BlockBytes: block,
			Assoc:      assoc,
			Repl:       cache.LRU,
			Write:      cache.WriteBack,
			Alloc:      cache.WriteAllocate,
		}))
	}
	var counts trace.Counts
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		counts.Add(r.Kind)
		for _, c := range cls {
			c.Access(r.Addr, r.Kind == trace.Store)
		}
	}
	printMix(counts)
	fmt.Printf("%-10s %10s %12s %12s %12s\n", "cache", "miss", "compulsory", "capacity", "conflict")
	for _, c := range cls {
		b := c.Breakdown()
		fmt.Printf("%-10s %10.5f %12d %12d %12d\n",
			c.Target().Config().Name, b.MissRatio(), b.Compulsory, b.Capacity, b.Conflict)
	}
}

func printMix(counts trace.Counts) {
	fmt.Printf("references: %d (ifetch %.1f%%, load %.1f%%, store %.1f%%)\n",
		counts.Total(),
		100*float64(counts.IFetch)/float64(counts.Total()),
		100*float64(counts.Load)/float64(counts.Total()),
		100*float64(counts.Store)/float64(counts.Total()))
}

// Command fakes3 runs the in-process fake S3 server as a standalone
// process: a minimal S3-compatible object store (SigV4-verified PUT,
// GET, HEAD, DELETE, and paginated ListObjectsV2) holding everything in
// memory. It exists for integration tests and CI smoke jobs that need a
// real network endpoint for the s3 and tiered artifact backends without
// any external service; it is not a durable store and never will be.
//
// Usage:
//
//	fakes3 -addr 127.0.0.1:9444 -bucket traces -access-key AKTEST -secret-key sekrit
//	mlcastore -backend s3 -s3-endpoint http://127.0.0.1:9444 -s3-bucket traces \
//	    -s3-access-key AKTEST -s3-secret-key sekrit -insecure list
//
// GET /fakes3/stats returns request and fault counters as JSON, which
// CI jobs use to assert remote quietness (e.g. a warm tiered cache
// issuing zero GETs).
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"mlcache/internal/store/backend/fakes3"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fakes3: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:9444", "listen address (host:port)")
		bucket    = flag.String("bucket", "traces", "bucket name to serve")
		accessKey = flag.String("access-key", "", "require SigV4 auth with this access key ID (empty = unsigned)")
		secretKey = flag.String("secret-key", "", "secret key for -access-key")
		region    = flag.String("region", "", "SigV4 region (default us-east-1)")
	)
	flag.Parse()
	if (*accessKey == "") != (*secretKey == "") {
		log.Fatal("-access-key and -secret-key must be set together")
	}

	srv := fakes3.New(fakes3.Config{
		Bucket:    *bucket,
		AccessKey: *accessKey,
		SecretKey: *secretKey,
		Region:    *region,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	auth := "unsigned"
	if *accessKey != "" {
		auth = "SigV4 key " + *accessKey
	}
	log.Printf("serving bucket %q on http://%s (%s; stats at /fakes3/stats)", *bucket, ln.Addr(), auth)
	log.Fatal(http.Serve(ln, srv))
}

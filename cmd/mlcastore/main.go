// Command mlcastore administers a content-addressed artifact store
// through any backend: a local directory (fs), an S3-compatible bucket
// (s3), or a local cache tiered over a bucket (tiered). It lists and
// stats objects, re-verifies their bytes against their digests, adds
// files, and runs mark-and-sweep garbage collection with the same root
// discipline the serve layer uses — digests referenced by a serve state
// directory's jobs journal are never collected.
//
// Usage:
//
//	mlcastore -dir /var/lib/mlcserve/artifacts list
//	mlcastore -dir ... stat sha256:<hex>
//	mlcastore -dir ... verify
//	mlcastore -dir ... add trace.mlca
//	mlcastore -dir ... -state-dir /var/lib/mlcserve gc
//	mlcastore -dir ... -state-dir /var/lib/mlcserve gc -apply
//	mlcastore -backend s3 -s3-endpoint https://s3:9000 -s3-bucket traces list
//
// gc is a dry run unless -apply is given: it prints what would be
// reclaimed and why the rest was kept. Objects younger than -grace are
// never collected, so a concurrent upload that has not yet been
// journaled as a job reference survives. Credentials are refused over
// plaintext HTTP unless -insecure, exactly like the serve binaries;
// -s3-access-key/-s3-secret-key also read MLCA_S3_ACCESS_KEY and
// MLCA_S3_SECRET_KEY so secrets can stay out of process listings.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"mlcache/internal/serve"
	"mlcache/internal/store"
	"mlcache/internal/store/backend"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"usage: mlcastore [flags] list | stat DIGEST... | verify [DIGEST...] | add FILE... | gc [-apply]\n\nflags:\n")
	flag.PrintDefaults()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlcastore: ")
	var (
		backendName = flag.String("backend", "", "artifact backend: fs, s3, or tiered (default: fs when -dir is set, s3 when -s3-endpoint is set)")
		dir         = flag.String("dir", "", "local store directory (fs backend, or the local tier of tiered)")
		s3Endpoint  = flag.String("s3-endpoint", "", "S3-compatible endpoint URL")
		s3Bucket    = flag.String("s3-bucket", "", "bucket holding the artifact objects")
		s3Prefix    = flag.String("s3-prefix", "", "object key prefix (default mlca/)")
		s3Region    = flag.String("s3-region", "", "SigV4 signing region (default us-east-1)")
		s3Access    = flag.String("s3-access-key", "", "S3 access key ID (or env MLCA_S3_ACCESS_KEY)")
		s3Secret    = flag.String("s3-secret-key", "", "S3 secret key (or env MLCA_S3_SECRET_KEY)")
		insecure    = flag.Bool("insecure", false, "allow credentials over plaintext HTTP (testing only)")
		stateDir    = flag.String("state-dir", "", "with gc: protect every artifact referenced by this serve state directory's jobs journal")
		grace       = flag.Duration("grace", time.Hour, "with gc: never collect objects younger than this")
		quiet       = flag.Bool("q", false, "print digests only (list) / suppress per-object output (verify)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	if *s3Access == "" {
		*s3Access = os.Getenv("MLCA_S3_ACCESS_KEY")
	}
	if *s3Secret == "" {
		*s3Secret = os.Getenv("MLCA_S3_SECRET_KEY")
	}
	b, err := openBackend(*backendName, *dir, backend.S3Config{
		Endpoint:  *s3Endpoint,
		Bucket:    *s3Bucket,
		Prefix:    *s3Prefix,
		Region:    *s3Region,
		AccessKey: *s3Access,
		SecretKey: *s3Secret,
		Insecure:  *insecure,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "list":
		err = cmdList(ctx, b, *quiet)
	case "stat":
		err = cmdStat(ctx, b, args)
	case "verify":
		err = cmdVerify(ctx, b, args, *quiet)
	case "add":
		err = cmdAdd(ctx, b, args)
	case "gc":
		err = cmdGC(ctx, b, args, *stateDir, *grace)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// openBackend builds the backend from the flag set, inferring fs/s3
// when -backend is not explicit. tiered composes -dir over the bucket.
func openBackend(name, dir string, s3cfg backend.S3Config) (backend.Backend, error) {
	if name == "" {
		switch {
		case dir != "" && s3cfg.Endpoint != "":
			name = "tiered"
		case s3cfg.Endpoint != "":
			name = "s3"
		case dir != "":
			name = "fs"
		default:
			return nil, fmt.Errorf("need -dir or -s3-endpoint (or both for tiered)")
		}
	}
	openFS := func() (*store.FileStore, error) {
		if dir == "" {
			return nil, fmt.Errorf("-backend %s needs -dir", name)
		}
		return store.OpenFileStore(dir)
	}
	switch name {
	case "fs":
		fs, err := openFS()
		if err != nil {
			return nil, err
		}
		return backend.NewFS(fs), nil
	case "s3":
		return backend.NewS3(s3cfg)
	case "tiered":
		fs, err := openFS()
		if err != nil {
			return nil, err
		}
		s3, err := backend.NewS3(s3cfg)
		if err != nil {
			return nil, err
		}
		return backend.NewTiered(fs, s3), nil
	}
	return nil, fmt.Errorf("-backend must be fs, s3, or tiered, got %q", name)
}

func cmdList(ctx context.Context, b backend.Backend, quiet bool) error {
	var infos []backend.ObjectInfo
	if err := b.List(ctx, func(info backend.ObjectInfo) error {
		infos = append(infos, info)
		return nil
	}); err != nil {
		return err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Digest.String() < infos[j].Digest.String() })
	var total int64
	for _, info := range infos {
		if quiet {
			fmt.Println(info.Digest)
		} else {
			mod := "-"
			if !info.ModTime.IsZero() {
				mod = info.ModTime.UTC().Format(time.RFC3339)
			}
			fmt.Printf("%s\t%d\t%s\n", info.Digest, info.Size, mod)
		}
		total += info.Size
	}
	if !quiet {
		fmt.Printf("# %d objects, %d bytes\n", len(infos), total)
	}
	return nil
}

func cmdStat(ctx context.Context, b backend.Backend, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("stat needs at least one digest")
	}
	for _, arg := range args {
		d, err := store.ParseDigest(arg)
		if err != nil {
			return err
		}
		info, err := b.Head(ctx, d)
		if err != nil {
			return fmt.Errorf("%s: %w", d, err)
		}
		mod := "-"
		if !info.ModTime.IsZero() {
			mod = info.ModTime.UTC().Format(time.RFC3339)
		}
		fmt.Printf("%s\t%d\t%s\n", info.Digest, info.Size, mod)
	}
	return nil
}

// cmdVerify re-reads each object and re-hashes its bytes; a store that
// passes is byte-for-byte what its digests promise. Exits non-zero if
// any object is corrupt or unreadable.
func cmdVerify(ctx context.Context, b backend.Backend, args []string, quiet bool) error {
	var digests []store.Digest
	if len(args) > 0 {
		for _, arg := range args {
			d, err := store.ParseDigest(arg)
			if err != nil {
				return err
			}
			digests = append(digests, d)
		}
	} else {
		if err := b.List(ctx, func(info backend.ObjectInfo) error {
			digests = append(digests, info.Digest)
			return nil
		}); err != nil {
			return err
		}
		sort.Slice(digests, func(i, j int) bool { return digests[i].String() < digests[j].String() })
	}
	bad := 0
	for _, d := range digests {
		if err := verifyOne(ctx, b, d); err != nil {
			bad++
			fmt.Printf("CORRUPT\t%s\t%v\n", d, err)
		} else if !quiet {
			fmt.Printf("ok\t%s\n", d)
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d objects failed verification", bad, len(digests))
	}
	if !quiet {
		fmt.Printf("# %d objects verified\n", len(digests))
	}
	return nil
}

func verifyOne(ctx context.Context, b backend.Backend, d store.Digest) error {
	rc, err := b.Get(ctx, d)
	if err != nil {
		return err
	}
	defer rc.Close()
	got, _, err := store.DigestReader(rc)
	if err != nil {
		return err
	}
	if got != d {
		return fmt.Errorf("bytes hash to %s", got)
	}
	return nil
}

func cmdAdd(ctx context.Context, b backend.Backend, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("add needs at least one file")
	}
	for _, path := range args {
		d, size, err := store.DigestFile(path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		_, err = b.Put(ctx, d, f, size)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s\t%d\t%s\n", d, size, path)
	}
	return nil
}

func cmdGC(ctx context.Context, b backend.Backend, args []string, stateDir string, grace time.Duration) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	apply := fs.Bool("apply", false, "actually delete; default is a dry run")
	dryRun := fs.Bool("dry-run", false, "report only (the default; explicit for scripts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *apply && *dryRun {
		return fmt.Errorf("gc: -apply and -dry-run are mutually exclusive")
	}
	roots := map[store.Digest]bool{}
	if stateDir != "" {
		var err error
		roots, err = serve.StateArtifactRoots(stateDir)
		if err != nil {
			return err
		}
	}
	pins, _ := b.(backend.Pins)
	report, err := backend.GC(ctx, b, backend.GCOptions{
		Roots:  roots,
		Pins:   pins,
		Grace:  grace,
		DryRun: !*apply,
		Logf:   log.Printf,
	})
	if err != nil {
		return err
	}
	verb := "reclaimed"
	if report.DryRun {
		verb = "would reclaim"
		for _, d := range report.Candidates {
			fmt.Printf("candidate\t%s\n", d)
		}
	}
	fmt.Printf("# scanned %d objects (%d bytes); %s %d (%d bytes); kept %d roots, %d pinned, %d in grace\n",
		report.Scanned, report.ScannedBytes, verb, report.Reclaimed, report.ReclaimedBytes,
		report.KeptRoots, report.KeptPinned, report.KeptGrace)
	return nil
}

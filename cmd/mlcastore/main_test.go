package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mlcache/internal/store"
	"mlcache/internal/store/backend"
)

func openFS(t *testing.T, dir string) backend.Backend {
	t.Helper()
	b, err := openBackend("fs", dir, backend.S3Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOpenBackendSelection(t *testing.T) {
	if _, err := openBackend("", "", backend.S3Config{}); err == nil {
		t.Fatal("no flags accepted")
	}
	if _, err := openBackend("gcs", t.TempDir(), backend.S3Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := openBackend("s3", "", backend.S3Config{}); err == nil {
		t.Fatal("s3 without endpoint accepted")
	}
	// Inference: -dir alone is fs; -dir plus an endpoint is tiered.
	b, err := openBackend("", t.TempDir(), backend.S3Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*backend.FS); !ok {
		t.Fatalf("dir-only backend is %T, want *backend.FS", b)
	}
	b, err = openBackend("", t.TempDir(), backend.S3Config{
		Endpoint: "https://s3.example.com", Bucket: "b",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(*backend.Tiered); !ok {
		t.Fatalf("dir+endpoint backend is %T, want *backend.Tiered", b)
	}
	// The plaintext-credential refusal reaches the CLI unchanged.
	_, err = openBackend("s3", "", backend.S3Config{
		Endpoint: "http://s3.example.com", Bucket: "b",
		AccessKey: "AKTEST", SecretKey: "sekrit",
	})
	if err == nil || !strings.Contains(err.Error(), "plaintext") {
		t.Fatalf("plaintext credentials: %v", err)
	}
}

func TestAddVerifyGCRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	b := openFS(t, dir)

	// add: two files land under their digests.
	src := filepath.Join(t.TempDir(), "a.bin")
	if err := os.WriteFile(src, bytes.Repeat([]byte("alpha"), 400), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdAdd(ctx, b, []string{src}); err != nil {
		t.Fatal(err)
	}
	d, _, err := store.DigestFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmdStat(ctx, b, []string{d.String()}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify(ctx, b, nil, true); err != nil {
		t.Fatal(err)
	}

	// Corrupt the object in place: verify must fail loudly.
	path, err := b.(*backend.FS).Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdVerify(ctx, b, nil, true); err == nil {
		t.Fatal("verify passed a corrupt object")
	}

	// gc dry run touches nothing even with zero grace; apply reclaims the
	// unrooted object.
	old := time.Now().Add(-2 * time.Hour)
	os.Chtimes(path, old, old)
	if err := cmdGC(ctx, b, []string{"-dry-run"}, "", time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := b.(*backend.FS).Resolve(d); err != nil {
		t.Fatal("dry-run gc deleted the object")
	}
	if err := cmdGC(ctx, b, []string{"-apply"}, "", time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := b.(*backend.FS).Resolve(d); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("apply gc kept the garbage: %v", err)
	}
}

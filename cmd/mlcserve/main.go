// Command mlcserve runs the sweep engine as a long-running HTTP service:
// clients POST sweep-grid jobs (the same JSON job spec the distributed
// coordinator uses) to /jobs and stream per-point results back as NDJSON,
// ending with a rendered table byte-identical to `sweep` CLI output for
// the same grid. One resident process amortizes workload decoding (a
// shared refcounted arena cache), hierarchy allocation (a geometry-keyed
// pool), and repeated grids (a per-point result cache) across every
// client.
//
// Usage:
//
//	mlcserve -addr :9292
//	curl -sN -X POST --data-binary @job.json 'localhost:9292/jobs?csv=1'
//	curl -s localhost:9292/metrics
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503, new jobs are
// refused, and in-flight grids finish streaming before the process exits
// (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mlcache/internal/prof"
	"mlcache/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlcserve: ")
	var (
		addr         = flag.String("addr", ":9292", "listen address (host:port)")
		jobs         = flag.Int("jobs", 4, "max concurrently running jobs")
		queue        = flag.Int("queue", 16, "max jobs waiting for a slot before 429")
		par          = flag.Int("par", 0, "simulation workers per job (0 = GOMAXPROCS)")
		arenaBudget  = flag.Int64("arena-budget-mb", 1024, "workload cache budget in MiB")
		poolPerGeom  = flag.Int("pool-per-geometry", 4, "idle hierarchies kept per cache geometry")
		resultPoints = flag.Int("result-cache-points", 65536, "per-point result cache capacity")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := serve.Config{
		MaxJobs:           *jobs,
		MaxQueue:          *queue,
		Parallelism:       *par,
		ArenaBudgetBytes:  *arenaBudget << 20,
		PoolPerGeometry:   *poolPerGeom,
		ResultCachePoints: *resultPoints,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	s := serve.New(cfg)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// No write timeout: job streams legitimately run for minutes.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	log.Printf("listening on %s (POST /jobs, GET /healthz, GET /metrics)", *addr)

	select {
	case err := <-serveErr:
		log.Fatalf("serve %s: %v", *addr, err)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, let streaming grids finish.
	s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("drain incomplete after %v: %v", *drainTimeout, err)
		os.Exit(1)
	}
	log.Print("drained cleanly")
}

// Command mlcserve runs the sweep engine as a long-running HTTP service:
// clients POST sweep-grid jobs (the same JSON job spec the distributed
// coordinator uses) to /jobs and stream per-point results back as NDJSON
// (or SSE with Accept: text/event-stream), ending with a rendered table
// byte-identical to `sweep` CLI output for the same grid. One resident
// process amortizes workload decoding (a shared refcounted arena cache),
// hierarchy allocation (a geometry-keyed pool), and repeated grids (a
// per-point result cache) across every client.
//
// With -state-dir the service is durable: every completed point and every
// accepted job is journaled (CRC'd segment-rotated JSONL) before it is
// streamed, a restarted process replays finished points from disk and
// finishes interrupted grids in the background — even `kill -9` mid-grid
// recomputes zero points. With -tenants-config the service is
// multi-tenant: /jobs requires an API key, each tenant gets token-bucket
// admission, a weighted share of the run slots, and labeled /metrics.
//
// With -artifact-store the service is also a content-addressed trace
// origin: clients PUT trace artifacts to /artifacts/sha256:<hex> and
// submit jobs that name the workload by digest alone — no path on the
// server, no shared filesystem. Because API keys are bearer secrets,
// -tenants-config over plaintext HTTP is refused unless -insecure;
// configure -tls-cert/-tls-key for production.
//
// Usage:
//
//	mlcserve -addr :9292 -state-dir /var/lib/mlcserve
//	curl -sN -X POST --data-binary @job.json 'localhost:9292/jobs?csv=1'
//	curl -s localhost:9292/metrics
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503, new jobs are
// refused, and in-flight grids finish streaming before the process exits
// (bounded by -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mlcache/internal/prof"
	"mlcache/internal/serve"
	"mlcache/internal/store"
	"mlcache/internal/store/backend"
	"mlcache/internal/sweep"
)

// options collects every flag value so validation is testable apart from
// flag parsing and process exit.
type options struct {
	jobs          int
	queue         int
	arenaBudget   int64
	stateDir      string
	artifactDir   string
	journalMaxMB  int64
	tenantsPath   string
	anonRate      float64
	anonBurst     int
	plan          string
	maxAttempts   int
	maxJobBytes   int64
	maxJobCost    int64
	maxInflight   int64
	maxDeadline   time.Duration
	streamTimeout time.Duration
	faultPoint    string
	sec           store.Security

	artifactBackend string // "", "fs", "s3", or "tiered"
	s3Endpoint      string
	s3Bucket        string
	s3Prefix        string
	s3Region        string
	s3AccessKey     string
	s3SecretKey     string
	gcInterval      time.Duration
	gcGrace         time.Duration
}

// validate rejects unusable flag combinations up front — an unwritable
// state dir, a zero quota, a malformed tenants table — so the server
// fails at startup with a clear message instead of panicking mid-job. It
// returns the parsed tenants table (nil when -tenants-config is unset).
func validate(o options) (*serve.Tenants, error) {
	if o.jobs <= 0 {
		return nil, fmt.Errorf("-jobs must be positive, got %d", o.jobs)
	}
	if o.queue <= 0 {
		return nil, fmt.Errorf("-queue must be positive, got %d", o.queue)
	}
	if o.arenaBudget <= 0 {
		return nil, fmt.Errorf("-arena-budget-mb must be positive, got %d", o.arenaBudget)
	}
	if o.anonRate < 0 {
		return nil, fmt.Errorf("-tenant-rate must be non-negative, got %g", o.anonRate)
	}
	if o.anonBurst < 0 {
		return nil, fmt.Errorf("-tenant-burst must be non-negative, got %d", o.anonBurst)
	}
	if _, err := sweep.ParsePlanMode(o.plan); err != nil {
		return nil, fmt.Errorf("-plan: %v", err)
	}
	if o.maxAttempts <= 0 {
		return nil, fmt.Errorf("-max-job-attempts must be positive, got %d", o.maxAttempts)
	}
	if o.maxJobBytes < 0 {
		return nil, fmt.Errorf("-max-job-bytes must be non-negative, got %d", o.maxJobBytes)
	}
	if o.maxJobCost < 0 {
		return nil, fmt.Errorf("-max-job-cost must be non-negative, got %d", o.maxJobCost)
	}
	if o.maxDeadline < 0 {
		return nil, fmt.Errorf("-max-job-deadline must be non-negative, got %v", o.maxDeadline)
	}
	if _, err := serve.ParseFaultPoint(o.faultPoint); err != nil {
		return nil, fmt.Errorf("-fault-point: %v", err)
	}
	if o.stateDir != "" {
		if o.journalMaxMB <= 0 {
			return nil, fmt.Errorf("-journal-max-mb must be positive, got %d", o.journalMaxMB)
		}
		if err := os.MkdirAll(o.stateDir, 0o755); err != nil {
			return nil, fmt.Errorf("-state-dir %s: %v", o.stateDir, err)
		}
		probe := filepath.Join(o.stateDir, ".writable-probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			return nil, fmt.Errorf("-state-dir %s is not writable: %v", o.stateDir, err)
		}
		os.Remove(probe)
	}
	switch o.artifactBackend {
	case "":
		// Legacy path: -artifact-store alone means a plain local directory.
	case "fs":
		if o.artifactDir == "" {
			return nil, fmt.Errorf("-artifact-backend fs needs -artifact-store DIR")
		}
	case "s3", "tiered":
		if o.s3Endpoint == "" || o.s3Bucket == "" {
			return nil, fmt.Errorf("-artifact-backend %s needs -s3-endpoint and -s3-bucket", o.artifactBackend)
		}
		if o.artifactBackend == "tiered" && o.artifactDir == "" {
			return nil, fmt.Errorf("-artifact-backend tiered needs -artifact-store DIR for the persistent local tier")
		}
		if (o.s3AccessKey == "") != (o.s3SecretKey == "") {
			return nil, fmt.Errorf("-s3-access-key and -s3-secret-key must be set together")
		}
	default:
		return nil, fmt.Errorf("-artifact-backend must be fs, s3, or tiered, got %q", o.artifactBackend)
	}
	if o.gcInterval < 0 {
		return nil, fmt.Errorf("-store-gc-interval must be non-negative, got %v", o.gcInterval)
	}
	if o.gcGrace < 0 {
		return nil, fmt.Errorf("-store-gc-grace must be non-negative, got %v", o.gcGrace)
	}
	if err := o.sec.CheckServer(); err != nil {
		return nil, err
	}
	if o.tenantsPath == "" {
		return nil, nil
	}
	// API keys are bearer secrets exactly like the store token: accepting
	// them over plaintext hands them to the network.
	if !o.sec.TLSServer() && !o.sec.Insecure {
		return nil, fmt.Errorf("-tenants-config turns on API keys; refusing to accept them over plaintext HTTP — configure -tls-cert/-tls-key or pass -insecure")
	}
	tenants, err := serve.LoadTenants(o.tenantsPath)
	if err != nil {
		return nil, fmt.Errorf("-tenants-config: %v", err)
	}
	return tenants, nil
}

// buildArtifacts constructs the artifact backend named by
// -artifact-backend, or nil for the legacy -artifact-store directory
// path (serve.New opens that itself). The serve layer mmaps artifacts
// from local paths, so the s3 mode is a tiered composition too: the
// bucket is the source of truth and a local cache directory (under
// -artifact-store, or -state-dir/artifact-cache, or a temp dir) holds
// what this process touches. Credential safety rides on backend.NewS3:
// keys over plaintext HTTP are refused unless -insecure.
func buildArtifacts(o options) (backend.Store, string, error) {
	switch o.artifactBackend {
	case "":
		return nil, "", nil
	case "fs":
		fs, err := store.OpenFileStore(o.artifactDir)
		if err != nil {
			return nil, "", fmt.Errorf("-artifact-store %s: %w", o.artifactDir, err)
		}
		return backend.NewFS(fs), "fs " + o.artifactDir, nil
	}
	s3, err := backend.NewS3(backend.S3Config{
		Endpoint:  o.s3Endpoint,
		Bucket:    o.s3Bucket,
		Prefix:    o.s3Prefix,
		Region:    o.s3Region,
		AccessKey: o.s3AccessKey,
		SecretKey: o.s3SecretKey,
		Insecure:  o.sec.Insecure,
		Logf:      log.Printf,
	})
	if err != nil {
		return nil, "", err
	}
	dir := o.artifactDir
	if dir == "" && o.stateDir != "" {
		dir = filepath.Join(o.stateDir, "artifact-cache")
	}
	if dir == "" {
		dir, err = os.MkdirTemp("", "mlcserve-artifacts-*")
		if err != nil {
			return nil, "", err
		}
	}
	local, err := store.OpenFileStore(dir)
	if err != nil {
		return nil, "", fmt.Errorf("local tier %s: %w", dir, err)
	}
	desc := fmt.Sprintf("%s %s/%s (local tier %s)", o.artifactBackend, o.s3Endpoint, o.s3Bucket, dir)
	return backend.NewTiered(local, s3), desc, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlcserve: ")
	var (
		addr         = flag.String("addr", ":9292", "listen address (host:port)")
		jobs         = flag.Int("jobs", 4, "max concurrently running jobs")
		queue        = flag.Int("queue", 16, "max jobs waiting for a slot per tenant before 429")
		par          = flag.Int("par", 0, "simulation workers per job (0 = GOMAXPROCS)")
		arenaBudget  = flag.Int64("arena-budget-mb", 1024, "workload cache budget in MiB")
		poolPerGeom  = flag.Int("pool-per-geometry", 4, "idle hierarchies kept per cache geometry")
		resultPoints = flag.Int("result-cache-points", 65536, "per-point result cache capacity")
		stateDir     = flag.String("state-dir", "", "journal results and jobs here; restart replays them (empty = in-memory only)")
		journalMax   = flag.Int64("journal-max-mb", 64, "journal segment rotation threshold in MiB (with -state-dir)")
		tenantsPath  = flag.String("tenants-config", "", "JSON tenant table turning on API-key auth, quotas, and fair scheduling")
		anonRate     = flag.Float64("tenant-rate", 0, "anonymous-tenant admission rate in jobs/sec without -tenants-config (0 = unlimited)")
		anonBurst    = flag.Int("tenant-burst", 0, "anonymous-tenant admission burst (0 = rate-derived)")
		artifactDir  = flag.String("artifact-store", "", "serve and accept content-addressed trace artifacts under /artifacts/ from this directory")
		artifactBE   = flag.String("artifact-backend", "", "artifact backend: fs (local directory), s3 (remote bucket, local scratch cache), or tiered (persistent -artifact-store cache over the bucket); empty = plain -artifact-store directory")
		s3Endpoint   = flag.String("s3-endpoint", "", "S3-compatible endpoint URL, e.g. https://s3.example.com:9000")
		s3Bucket     = flag.String("s3-bucket", "", "bucket holding the artifact objects")
		s3Prefix     = flag.String("s3-prefix", "", "object key prefix inside the bucket (default mlca/)")
		s3Region     = flag.String("s3-region", "", "SigV4 signing region (default us-east-1)")
		s3AccessKey  = flag.String("s3-access-key", "", "S3 access key ID (or env MLCA_S3_ACCESS_KEY); empty = unsigned requests")
		s3SecretKey  = flag.String("s3-secret-key", "", "S3 secret key (or env MLCA_S3_SECRET_KEY; the env var keeps it out of process listings)")
		gcInterval   = flag.Duration("store-gc-interval", 0, "run artifact-store GC cycles this often (0 = never)")
		gcGrace      = flag.Duration("store-gc-grace", time.Hour, "never collect objects younger than this")
		tlsCert      = flag.String("tls-cert", "", "serve HTTPS with this PEM certificate (with -tls-key)")
		tlsKey       = flag.String("tls-key", "", "PEM private key for -tls-cert")
		insecure     = flag.Bool("insecure", false, "allow API keys over plaintext HTTP (testing only)")
		plan         = flag.String("plan", "full", "default grid evaluation plan for jobs that do not name one (full or onepass)")
		maxAttempts  = flag.Int("max-job-attempts", 3, "interrupted attempts before a job is quarantined as poisoned (with -state-dir)")
		maxJobBytes  = flag.Int64("max-job-bytes", 0, "reject jobs whose estimated arena exceeds this many bytes with 413 (0 = unlimited)")
		maxJobCost   = flag.Int64("max-job-cost", 0, "reject jobs whose estimated work (grid points x trace refs) exceeds this with 413 (0 = unlimited)")
		maxInflight  = flag.Int64("max-inflight-bytes", 0, "aggregate estimated bytes admitted at once before 503 (0 = 2x arena budget, negative = unlimited)")
		maxDeadline  = flag.Duration("max-job-deadline", 0, "cap on the deadline a job spec may request (0 = no cap)")
		streamWrite  = flag.Duration("stream-write-timeout", 60*time.Second, "disconnect a client whose stream write blocks this long (0 = disabled)")
		faultPoint   = flag.String("fault-point", "", "test-only crash injection, e.g. runjob:seed=666 (never use in production)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "max wait for in-flight jobs on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	sec := store.Security{CertFile: *tlsCert, KeyFile: *tlsKey, Insecure: *insecure}
	if *s3AccessKey == "" {
		*s3AccessKey = os.Getenv("MLCA_S3_ACCESS_KEY")
	}
	if *s3SecretKey == "" {
		*s3SecretKey = os.Getenv("MLCA_S3_SECRET_KEY")
	}
	opts := options{
		jobs: *jobs, queue: *queue, arenaBudget: *arenaBudget,
		stateDir: *stateDir, artifactDir: *artifactDir, journalMaxMB: *journalMax,
		tenantsPath: *tenantsPath, anonRate: *anonRate, anonBurst: *anonBurst,
		plan: *plan, maxAttempts: *maxAttempts, maxJobBytes: *maxJobBytes,
		maxJobCost: *maxJobCost, maxInflight: *maxInflight, maxDeadline: *maxDeadline,
		streamTimeout: *streamWrite, faultPoint: *faultPoint, sec: sec,
		artifactBackend: *artifactBE, s3Endpoint: *s3Endpoint, s3Bucket: *s3Bucket,
		s3Prefix: *s3Prefix, s3Region: *s3Region,
		s3AccessKey: *s3AccessKey, s3SecretKey: *s3SecretKey,
		gcInterval: *gcInterval, gcGrace: *gcGrace,
	}
	tenants, err := validate(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlcserve: %v\n", err)
		os.Exit(2)
	}
	artifacts, backendDesc, err := buildArtifacts(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlcserve: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	// The flag says "0 disables the stream timeout"; the Config says
	// "0 means default, negative disables". Translate.
	streamTimeout := *streamWrite
	if streamTimeout == 0 {
		streamTimeout = -1
	}
	cfg := serve.Config{
		MaxJobs:           *jobs,
		MaxQueue:          *queue,
		Parallelism:       *par,
		ArenaBudgetBytes:  *arenaBudget << 20,
		PoolPerGeometry:   *poolPerGeom,
		ResultCachePoints: *resultPoints,
		StateDir:          *stateDir,
		ArtifactDir:       *artifactDir,
		Artifacts:         artifacts,
		JournalMaxBytes:   *journalMax << 20,
		Tenants:           tenants,
		AnonRatePerSec:    *anonRate,
		AnonBurst:         *anonBurst,
		DefaultPlan:       *plan,
		MaxJobAttempts:    *maxAttempts,
		Cost: serve.CostModel{
			MaxJobBytes:      *maxJobBytes,
			MaxJobCost:       *maxJobCost,
			MaxInflightBytes: *maxInflight,
		},
		MaxJobDeadline:     *maxDeadline,
		StreamWriteTimeout: streamTimeout,
		FaultPoint:         *faultPoint,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	s, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mlcserve: %v\n", err)
		os.Exit(2)
	}
	if n := s.ResumeInterrupted(); n > 0 {
		log.Printf("resuming %d interrupted jobs from %s", n, *stateDir)
	}
	if backendDesc != "" {
		log.Printf("artifact backend: %s", backendDesc)
	}

	if *faultPoint != "" {
		log.Printf("WARNING: -fault-point %s armed; this process will crash on matching jobs (testing only)", *faultPoint)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
		IdleTimeout:       2 * time.Minute,
		// No write timeout: job streams legitimately run for minutes — the
		// serve layer applies its own per-write deadline to streams
		// (-stream-write-timeout) instead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *gcInterval > 0 && (artifacts != nil || *artifactDir != "") {
		s.StartArtifactGC(ctx, *gcInterval, *gcGrace)
		log.Printf("artifact gc: every %v, grace %v", *gcInterval, *gcGrace)
	}

	serveErr := make(chan error, 1)
	scheme := "http"
	if sec.TLSServer() {
		scheme = "https"
		go func() { serveErr <- srv.ListenAndServeTLS(sec.CertFile, sec.KeyFile) }()
	} else {
		go func() { serveErr <- srv.ListenAndServe() }()
	}
	log.Printf("listening on %s (%s; POST /jobs, GET /healthz, GET /metrics)", *addr, scheme)

	select {
	case err := <-serveErr:
		log.Fatalf("serve %s: %v", *addr, err)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new work, let streaming grids finish.
	s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("drain incomplete after %v: %v", *drainTimeout, err)
		os.Exit(1)
	}
	s.Close()
	log.Print("drained cleanly")
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goodOptions() options {
	return options{jobs: 4, queue: 16, arenaBudget: 1024, journalMaxMB: 64, maxAttempts: 3}
}

func TestValidateRejectsBadFlagCombinations(t *testing.T) {
	// A regular file where a directory is needed defeats MkdirAll even for
	// root, unlike permission bits.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badTenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(badTenants, []byte(`{"tenants": [{"name": "a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"zero jobs", func(o *options) { o.jobs = 0 }, "-jobs"},
		{"negative jobs", func(o *options) { o.jobs = -1 }, "-jobs"},
		{"zero queue", func(o *options) { o.queue = 0 }, "-queue"},
		{"zero arena budget", func(o *options) { o.arenaBudget = 0 }, "-arena-budget-mb"},
		{"negative rate", func(o *options) { o.anonRate = -1 }, "-tenant-rate"},
		{"negative burst", func(o *options) { o.anonBurst = -1 }, "-tenant-burst"},
		{"zero attempts", func(o *options) { o.maxAttempts = 0 }, "-max-job-attempts"},
		{"negative job bytes", func(o *options) { o.maxJobBytes = -1 }, "-max-job-bytes"},
		{"negative job cost", func(o *options) { o.maxJobCost = -1 }, "-max-job-cost"},
		{"negative deadline cap", func(o *options) { o.maxDeadline = -time.Second }, "-max-job-deadline"},
		{"garbage fault point", func(o *options) { o.faultPoint = "explode" }, "-fault-point"},
		{
			"zero journal size with state dir",
			func(o *options) { o.stateDir = t.TempDir(); o.journalMaxMB = 0 },
			"-journal-max-mb",
		},
		{
			"unwritable state dir",
			func(o *options) { o.stateDir = filepath.Join(blocker, "state") },
			"-state-dir",
		},
		{
			"missing tenants config",
			func(o *options) {
				o.tenantsPath = filepath.Join(t.TempDir(), "nope.json")
				o.sec.Insecure = true
			},
			"no such file",
		},
		{
			"invalid tenants config",
			func(o *options) { o.tenantsPath = badTenants; o.sec.Insecure = true },
			"-tenants-config",
		},
		{
			"tenant keys over plaintext",
			func(o *options) { o.tenantsPath = badTenants },
			"plaintext",
		},
		{
			"cert without key",
			func(o *options) { o.sec.CertFile = "server.pem" },
			"both a certificate and a key",
		},
		{
			"unknown artifact backend",
			func(o *options) { o.artifactBackend = "gcs" },
			"-artifact-backend",
		},
		{
			"fs backend without a store dir",
			func(o *options) { o.artifactBackend = "fs" },
			"-artifact-store",
		},
		{
			"s3 backend without endpoint",
			func(o *options) { o.artifactBackend = "s3"; o.s3Bucket = "b" },
			"-s3-endpoint",
		},
		{
			"tiered backend without local tier",
			func(o *options) {
				o.artifactBackend = "tiered"
				o.s3Endpoint, o.s3Bucket = "https://s3.example.com", "b"
			},
			"-artifact-store",
		},
		{
			"access key without secret",
			func(o *options) {
				o.artifactBackend = "s3"
				o.s3Endpoint, o.s3Bucket = "https://s3.example.com", "b"
				o.s3AccessKey = "AKTEST"
			},
			"set together",
		},
		{
			"negative gc interval",
			func(o *options) { o.gcInterval = -time.Minute },
			"-store-gc-interval",
		},
		{
			"negative gc grace",
			func(o *options) { o.gcGrace = -time.Minute },
			"-store-gc-grace",
		},
	}
	for _, tc := range cases {
		o := goodOptions()
		tc.mutate(&o)
		_, err := validate(o)
		if err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateAcceptsWorkingConfigs(t *testing.T) {
	// Plain in-memory server.
	if _, err := validate(goodOptions()); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}

	// Durable server: the state dir is created on demand.
	o := goodOptions()
	o.stateDir = filepath.Join(t.TempDir(), "nested", "state")
	if _, err := validate(o); err != nil {
		t.Fatalf("writable -state-dir rejected: %v", err)
	}
	if fi, err := os.Stat(o.stateDir); err != nil || !fi.IsDir() {
		t.Fatalf("validate did not create %s: %v", o.stateDir, err)
	}

	// Tenant table round-trips through LoadTenants.
	path := filepath.Join(t.TempDir(), "tenants.json")
	cfg := `{"tenants": [
		{"name": "alice", "key": "ak_alice", "weight": 2, "rate_per_sec": 1, "burst": 4},
		{"name": "bob", "key": "ak_bob"}
	]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	o = goodOptions()
	o.tenantsPath = path
	o.sec.Insecure = true
	tenants, err := validate(o)
	if err != nil {
		t.Fatalf("valid tenants config rejected: %v", err)
	}
	if tenants == nil {
		t.Fatal("validate returned a nil tenant table for a valid config")
	}
}

func TestBuildArtifactsBackends(t *testing.T) {
	// Empty selection: legacy directory path, no backend constructed.
	if b, _, err := buildArtifacts(goodOptions()); err != nil || b != nil {
		t.Fatalf("empty backend: %v, %v", b, err)
	}

	// fs: wraps the artifact directory.
	o := goodOptions()
	o.artifactBackend = "fs"
	o.artifactDir = t.TempDir()
	if b, desc, err := buildArtifacts(o); err != nil || b == nil {
		t.Fatalf("fs backend: %v, %v", b, err)
	} else if !strings.Contains(desc, o.artifactDir) {
		t.Fatalf("fs description %q does not name the directory", desc)
	}

	// Credentials over plaintext HTTP are refused before any request.
	o = goodOptions()
	o.artifactBackend = "s3"
	o.s3Endpoint, o.s3Bucket = "http://s3.example.com", "traces"
	o.s3AccessKey, o.s3SecretKey = "AKTEST", "sekrit"
	if _, _, err := buildArtifacts(o); err == nil || !strings.Contains(err.Error(), "plaintext") {
		t.Fatalf("plaintext credentials accepted: %v", err)
	}
	// ... unless -insecure says the operator knows (tests, localhost).
	o.sec.Insecure = true
	o.stateDir = t.TempDir()
	b, desc, err := buildArtifacts(o)
	if err != nil || b == nil {
		t.Fatalf("insecure s3 backend: %v, %v", b, err)
	}
	if !strings.Contains(desc, "artifact-cache") {
		t.Fatalf("s3 scratch tier not under state dir: %q", desc)
	}

	// tiered: the artifact dir is the persistent local tier.
	o.artifactBackend = "tiered"
	o.artifactDir = t.TempDir()
	if _, desc, err := buildArtifacts(o); err != nil || !strings.Contains(desc, o.artifactDir) {
		t.Fatalf("tiered backend: %q, %v", desc, err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goodOptions() options {
	return options{jobs: 4, queue: 16, arenaBudget: 1024, journalMaxMB: 64, maxAttempts: 3}
}

func TestValidateRejectsBadFlagCombinations(t *testing.T) {
	// A regular file where a directory is needed defeats MkdirAll even for
	// root, unlike permission bits.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	badTenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(badTenants, []byte(`{"tenants": [{"name": "a"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"zero jobs", func(o *options) { o.jobs = 0 }, "-jobs"},
		{"negative jobs", func(o *options) { o.jobs = -1 }, "-jobs"},
		{"zero queue", func(o *options) { o.queue = 0 }, "-queue"},
		{"zero arena budget", func(o *options) { o.arenaBudget = 0 }, "-arena-budget-mb"},
		{"negative rate", func(o *options) { o.anonRate = -1 }, "-tenant-rate"},
		{"negative burst", func(o *options) { o.anonBurst = -1 }, "-tenant-burst"},
		{"zero attempts", func(o *options) { o.maxAttempts = 0 }, "-max-job-attempts"},
		{"negative job bytes", func(o *options) { o.maxJobBytes = -1 }, "-max-job-bytes"},
		{"negative job cost", func(o *options) { o.maxJobCost = -1 }, "-max-job-cost"},
		{"negative deadline cap", func(o *options) { o.maxDeadline = -time.Second }, "-max-job-deadline"},
		{"garbage fault point", func(o *options) { o.faultPoint = "explode" }, "-fault-point"},
		{
			"zero journal size with state dir",
			func(o *options) { o.stateDir = t.TempDir(); o.journalMaxMB = 0 },
			"-journal-max-mb",
		},
		{
			"unwritable state dir",
			func(o *options) { o.stateDir = filepath.Join(blocker, "state") },
			"-state-dir",
		},
		{
			"missing tenants config",
			func(o *options) {
				o.tenantsPath = filepath.Join(t.TempDir(), "nope.json")
				o.sec.Insecure = true
			},
			"no such file",
		},
		{
			"invalid tenants config",
			func(o *options) { o.tenantsPath = badTenants; o.sec.Insecure = true },
			"-tenants-config",
		},
		{
			"tenant keys over plaintext",
			func(o *options) { o.tenantsPath = badTenants },
			"plaintext",
		},
		{
			"cert without key",
			func(o *options) { o.sec.CertFile = "server.pem" },
			"both a certificate and a key",
		},
	}
	for _, tc := range cases {
		o := goodOptions()
		tc.mutate(&o)
		_, err := validate(o)
		if err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, o)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateAcceptsWorkingConfigs(t *testing.T) {
	// Plain in-memory server.
	if _, err := validate(goodOptions()); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}

	// Durable server: the state dir is created on demand.
	o := goodOptions()
	o.stateDir = filepath.Join(t.TempDir(), "nested", "state")
	if _, err := validate(o); err != nil {
		t.Fatalf("writable -state-dir rejected: %v", err)
	}
	if fi, err := os.Stat(o.stateDir); err != nil || !fi.IsDir() {
		t.Fatalf("validate did not create %s: %v", o.stateDir, err)
	}

	// Tenant table round-trips through LoadTenants.
	path := filepath.Join(t.TempDir(), "tenants.json")
	cfg := `{"tenants": [
		{"name": "alice", "key": "ak_alice", "weight": 2, "rate_per_sec": 1, "burst": 4},
		{"name": "bob", "key": "ak_bob"}
	]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	o = goodOptions()
	o.tenantsPath = path
	o.sec.Insecure = true
	tenants, err := validate(o)
	if err != nil {
		t.Fatalf("valid tenants config rejected: %v", err)
	}
	if tenants == nil {
		t.Fatal("validate returned a nil tenant table for a valid config")
	}
}

// Command tracegen writes reference traces to a file, either from the
// synthetic multiprogramming model or from one of the deterministic
// program-like kernels. Three output codecs are supported, chosen by
// -format or inferred from the output suffix: the Dinero-style text form,
// the compact delta-varint binary form (.bin/.mlct), and the fixed-width
// mmap artifact (.mlca) that cmd/mlcsim and cmd/sweep open with zero
// decode work — the format to use when many processes will share one
// trace.
//
// Usage:
//
//	tracegen -kind mix -n 1000000 -o mix.mlct
//	tracegen -kind mix -n 5000000 -format artifact -o mix.mlca
//	tracegen -kind matmul -param 64 -o mm.trc
//	tracegen -kind chase -param 4096 -n 100000 -o chase.trc
//	tracegen -kind stream -param 8192 -o stream.trc
//	tracegen -kind qsort -param 10000 -o qs.trc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mlcache/internal/synth"
	"mlcache/internal/trace"
	"mlcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		kind   = flag.String("kind", "mix", "workload: mix | matmul | chase | stream | qsort")
		n      = flag.Int64("n", 1_000_000, "references to emit (mix and chase; others are sized by -param)")
		param  = flag.Int("param", 64, "kernel size parameter (matrix N, nodes, elements, keys)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output path (required)")
		format = flag.String("format", "auto", "output codec: auto | text | binary | artifact")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing -o")
	}

	s, err := buildStream(*kind, *n, *param, *seed)
	if err != nil {
		log.Fatal(err)
	}

	f := *format
	if f == "auto" {
		switch {
		case trace.IsArtifactPath(*out):
			f = "artifact"
		case trace.IsBinaryPath(*out):
			f = "binary"
		default:
			f = "text"
		}
	}

	var count int64
	switch f {
	case "artifact":
		count, err = writeArtifact(*out, s)
	case "text", "binary":
		count, err = writeStream(*out, f, s)
	default:
		err = fmt.Errorf("unknown format %q", f)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d references to %s (%s)\n", count, *out, f)
}

// writeArtifact materializes the stream and emits the fixed-width mmap
// artifact. The whole trace is held in memory once — the same requirement
// every artifact consumer has.
func writeArtifact(path string, s trace.Stream) (int64, error) {
	arena, err := trace.Materialize(s)
	if err != nil {
		return 0, err
	}
	if err := trace.WriteArtifact(path, arena); err != nil {
		return 0, err
	}
	return int64(arena.Len()), nil
}

// writeStream streams references through the text or binary codec without
// materializing the trace.
func writeStream(path, format string, s trace.Stream) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)

	var write func(trace.Ref) error
	var flush func() error
	if format == "binary" {
		w := trace.NewBinaryWriter(bw)
		write, flush = w.Write, w.Flush
	} else {
		w := trace.NewTextWriter(bw)
		write, flush = w.Write, w.Flush
	}

	var count int64
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return count, err
		}
		if err := write(r); err != nil {
			return count, err
		}
		count++
	}
	if err := flush(); err != nil {
		return count, err
	}
	if err := bw.Flush(); err != nil {
		return count, err
	}
	return count, nil
}

func buildStream(kind string, n int64, param int, seed int64) (trace.Stream, error) {
	switch kind {
	case "mix":
		return synth.PaperStream(seed, n), nil
	case "matmul":
		tr, err := workload.MatMul(workload.MatMulConfig{N: param, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "chase":
		tr, err := workload.PointerChase(workload.PointerChaseConfig{
			Nodes: param, Steps: int(n), Seed: seed, Base: 1 << 24,
		})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "stream":
		tr, err := workload.Stream(workload.StreamConfig{Elems: param, Iters: 3, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "qsort":
		tr, err := workload.Quicksort(workload.QuicksortConfig{N: param, Seed: seed, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// Command tracegen writes reference traces to a file, either from the
// synthetic multiprogramming model or from one of the deterministic
// program-like kernels. Output uses the text codec, or the compact binary
// codec for paths ending in .bin or .mlct.
//
// Usage:
//
//	tracegen -kind mix -n 1000000 -o mix.mlct
//	tracegen -kind matmul -param 64 -o mm.trc
//	tracegen -kind chase -param 4096 -n 100000 -o chase.trc
//	tracegen -kind stream -param 8192 -o stream.trc
//	tracegen -kind qsort -param 10000 -o qs.trc
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"mlcache/internal/synth"
	"mlcache/internal/trace"
	"mlcache/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		kind  = flag.String("kind", "mix", "workload: mix | matmul | chase | stream | qsort")
		n     = flag.Int64("n", 1_000_000, "references to emit (mix and chase; others are sized by -param)")
		param = flag.Int("param", 64, "kernel size parameter (matrix N, nodes, elements, keys)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("missing -o")
	}

	s, err := buildStream(*kind, *n, *param, *seed)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriter(f)

	var write func(trace.Ref) error
	var flush func() error
	if strings.HasSuffix(*out, ".bin") || strings.HasSuffix(*out, ".mlct") {
		w := trace.NewBinaryWriter(bw)
		write, flush = w.Write, w.Flush
	} else {
		w := trace.NewTextWriter(bw)
		write, flush = w.Write, w.Flush
	}

	var count int64
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := write(r); err != nil {
			log.Fatal(err)
		}
		count++
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d references to %s\n", count, *out)
}

func buildStream(kind string, n int64, param int, seed int64) (trace.Stream, error) {
	switch kind {
	case "mix":
		return synth.PaperStream(seed, n), nil
	case "matmul":
		tr, err := workload.MatMul(workload.MatMulConfig{N: param, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "chase":
		tr, err := workload.PointerChase(workload.PointerChaseConfig{
			Nodes: param, Steps: int(n), Seed: seed, Base: 1 << 24,
		})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "stream":
		tr, err := workload.Stream(workload.StreamConfig{Elems: param, Iters: 3, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	case "qsort":
		tr, err := workload.Quicksort(workload.QuicksortConfig{N: param, Seed: seed, Base: 1 << 24})
		if err != nil {
			return nil, err
		}
		return tr.Stream(), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

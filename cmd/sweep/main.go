// Command sweep runs a grid of simulations over the L2 design space of the
// base machine — size × cycle time × associativity — and emits a table or
// CSV of relative execution times and miss ratios, for exploring design
// points beyond the paper's figures.
//
// Sweeps are fault-tolerant: points run on a worker pool, a panic or error
// in one simulation fails only that point, and with -checkpoint the
// completed points are journaled so an interrupted run (Ctrl-C, crash,
// timeout) can continue where it left off with -resume.
//
// Instead of the synthetic workload, -trace simulates a trace file; an
// .mlca artifact (see cmd/tracegen -format artifact) is mmap-ed straight
// into arena form, so several sweep processes opening the same artifact
// share one page-cache copy and pay zero decode work. -shard i/n runs only
// the i-th of n disjoint partitions of the grid — launch n processes with
// the same artifact and shards 0/n .. n-1/n to split a sweep across
// processes or machines.
//
// For coordinated multi-machine sweeps, -serve runs a coordinator that
// leases grid shards to workers over HTTP and merges their results
// (byte-identical to a single-process run); -join runs a worker against a
// coordinator. Leases expire and are retried elsewhere when a worker dies,
// stragglers are speculatively re-executed, and if no workers ever show up
// the coordinator finishes the grid in-process.
//
// Workers need no shared filesystem: a coordinator serving an .mlca trace
// publishes it by content digest at /artifacts/, and workers fetch it into
// a local verified cache (-artifact-cache) on demand, resuming torn
// transfers with Range requests. -token/-tls-cert/-tls-key/-tls-ca secure
// both the protocol and the transfers; -publish additionally accepts
// artifact uploads into a store directory.
//
// -plan onepass switches the engine to the one-pass planner: points whose
// timing the L1 boundary replay reproduces exactly share a single trace
// pass, and only timing-sensitive configurations are fully simulated. The
// output is byte-identical to -plan full.
//
// Usage:
//
//	sweep -sizes 16-4096 -cycles 1-10 -plan onepass
//	sweep -sizes 16-4096 -cycles 1-10 -assoc 1 -n 1000000
//	sweep -sizes 64-1024 -cycles 2-6 -assoc 2 -l1 32 -csv > out.csv
//	sweep -sizes 16-4096 -cycles 1-10 -checkpoint run.ckpt
//	sweep -sizes 16-4096 -cycles 1-10 -checkpoint run.ckpt -resume
//	sweep -trace mix.mlca -shard 0/4 -csv > shard0.csv
//	sweep -trace mix.mlca -serve :9191 -shards 8 -csv > merged.csv
//	sweep -join coordinator-host:9191
//	sweep -trace mix.mlca -serve :9191 -tls-cert crt.pem -tls-key key.pem -token s3cret
//	sweep -join coordinator-host:9191 -tls-ca crt.pem -token s3cret -artifact-cache /var/cache/mlc
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mlcache/internal/checkpoint"
	"mlcache/internal/coord"
	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/prof"
	"mlcache/internal/store"
	"mlcache/internal/store/backend"
	"mlcache/internal/sweep"
	"mlcache/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		sizesArg  = flag.String("sizes", "16-4096", "L2 size range in KB (lo-hi, powers of two)")
		cyclesArg = flag.String("cycles", "1-10", "L2 cycle time range in CPU cycles (lo-hi)")
		assoc     = flag.Int("assoc", 1, "L2 associativity (0 = fully associative)")
		l1        = flag.Int("l1", 4, "total L1 size in KB (split I+D)")
		slow      = flag.Bool("slowmem", false, "use the 2x slower main memory")
		n         = flag.Int64("n", 1_000_000, "trace length in references (with -trace: 0 = whole file, else a cap)")
		seed      = flag.Int64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "trace file to sweep (text/binary/artifact by suffix; default: synthetic workload)")
		lenient   = flag.Int("lenient", 0, "corrupt-record skip budget for non-artifact -trace files (0 = strict)")
		shardArg  = flag.String("shard", "", "run only shard i of n of the grid, as i/n (e.g. 0/4)")
		plan      = flag.String("plan", "full", "grid evaluation plan: full simulates every point; onepass captures the L1 boundary once per group and replays it (identical output, fewer trace passes)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")

		par      = flag.Int("par", 0, "concurrent simulations (0 = GOMAXPROCS)")
		ckptPath = flag.String("checkpoint", "", "journal completed points to this file")
		resume   = flag.Bool("resume", false, "skip points already journaled in -checkpoint")
		timeout  = flag.Duration("point-timeout", 0, "per-point simulation timeout (0 = none)")
		retries  = flag.Int("retries", 0, "extra attempts for a failed point")
		check    = flag.Bool("check", false, "validate cache-state invariants after every access (slow)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")

		serve         = flag.String("serve", "", "run a sweep coordinator listening on this address (host:port)")
		join          = flag.String("join", "", "join a coordinator at this address as a worker (grid flags come from the coordinator)")
		workerID      = flag.String("worker-id", "", "worker name for -join (default host.pid)")
		shards        = flag.Int("shards", 8, "with -serve: number of shard leases the grid is split into")
		leaseTTL      = flag.Duration("lease-ttl", 10*time.Second, "with -serve: lease lifetime without a heartbeat before a shard is reassigned")
		heartbeat     = flag.Duration("heartbeat", 0, "with -serve: worker heartbeat interval (default lease-ttl/5)")
		localFallback = flag.Duration("local-fallback", 10*time.Second, "with -serve: finish shards in-process if no worker is active for this long (0 = never)")

		publishDir = flag.String("publish", "", "with -serve: also accept artifact uploads (PUT /artifacts/{digest}) into this store directory and serve them")
		cacheDir   = flag.String("artifact-cache", "", "with -join: directory for the content-addressed artifact cache (default <user cache dir>/mlcache/artifacts)")
		cacheMB    = flag.Int64("artifact-cache-mb", 4096, "with -join: artifact cache budget in MiB")
		throttle   = flag.Int64("fetch-throttle-bps", 0, "with -join: cap artifact download throughput in bytes/sec (0 = unlimited)")
		s3Endpoint = flag.String("s3-endpoint", "", "with -join: fetch artifacts from this S3-compatible endpoint instead of the coordinator")
		s3Bucket   = flag.String("s3-bucket", "", "with -join -s3-endpoint: bucket holding the artifact objects")
		s3Prefix   = flag.String("s3-prefix", "", "with -join -s3-endpoint: object key prefix (default mlca/)")
		s3Region   = flag.String("s3-region", "", "with -join -s3-endpoint: SigV4 signing region (default us-east-1)")
		s3Access   = flag.String("s3-access-key", "", "with -join -s3-endpoint: access key ID (or env MLCA_S3_ACCESS_KEY)")
		s3Secret   = flag.String("s3-secret-key", "", "with -join -s3-endpoint: secret key (or env MLCA_S3_SECRET_KEY)")
		token      = flag.String("token", "", "bearer token: required of clients with -serve, presented to the coordinator with -join")
		tlsCert    = flag.String("tls-cert", "", "with -serve: TLS certificate file (enables HTTPS)")
		tlsKey     = flag.String("tls-key", "", "with -serve: TLS key file")
		tlsCA      = flag.String("tls-ca", "", "with -join: PEM root CA to trust for the coordinator (default: system roots)")
		insecure   = flag.Bool("insecure", false, "permit the bearer token over plaintext HTTP (trusted networks only)")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	// SIGINT/SIGTERM cancel the sweep; in-flight points stop at the next
	// stream check and completed work is kept (and journaled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sec := store.Security{
		Token:    *token,
		CertFile: *tlsCert,
		KeyFile:  *tlsKey,
		CAFile:   *tlsCA,
		Insecure: *insecure,
	}

	if *join != "" {
		if *serve != "" {
			log.Fatal("-serve and -join are mutually exclusive")
		}
		if *s3Access == "" {
			*s3Access = os.Getenv("MLCA_S3_ACCESS_KEY")
		}
		if *s3Secret == "" {
			*s3Secret = os.Getenv("MLCA_S3_SECRET_KEY")
		}
		wo := workerOptions{
			id: *workerID, par: *par, retries: *retries,
			cacheDir: *cacheDir, cacheMB: *cacheMB, throttleBPS: *throttle, sec: sec,
			s3Endpoint: *s3Endpoint, s3Bucket: *s3Bucket, s3Prefix: *s3Prefix,
			s3Region: *s3Region, s3AccessKey: *s3Access, s3SecretKey: *s3Secret,
		}
		if err := runWorker(ctx, *join, wo); err != nil && !errors.Is(err, context.Canceled) {
			log.Fatal(err)
		}
		return
	}

	loS, hiS, err := parseRange(*sizesArg)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}
	loC, hiC, err := parseRange(*cyclesArg)
	if err != nil {
		log.Fatalf("bad -cycles: %v", err)
	}
	if *resume && *ckptPath == "" {
		log.Fatal("-resume needs -checkpoint")
	}
	shardI, shardN, err := sweep.ParseShard(*shardArg)
	if err != nil {
		log.Fatalf("bad -shard: %v", err)
	}

	spec := coord.JobSpec{
		SizesBytes:      sweep.SizesPow2(loS, hiS),
		CyclesNS:        sweep.CyclesRange(int(loC), int(hiC), experiments.CPUCycleNS),
		Assoc:           *assoc,
		L1KB:            *l1,
		SlowMem:         *slow,
		TracePath:       *tracePath,
		Refs:            *n,
		Seed:            *seed,
		Lenient:         *lenient,
		CheckInvariants: *check,
		Plan:            *plan,
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}

	if *serve != "" {
		if shardN > 1 {
			log.Fatal("-shard splits a local sweep; with -serve use -shards")
		}
		if err := sec.CheckServer(); err != nil {
			log.Fatal(err)
		}
		// An artifact-backed grid is published by content: workers that
		// share the coordinator's filesystem open the path directly, and
		// everyone else fetches the digest from /artifacts/.
		if trace.IsArtifactPath(spec.TracePath) {
			d, size, err := store.DigestFile(spec.TracePath)
			if err != nil {
				log.Fatal(err)
			}
			crc, err := trace.ArtifactChecksum(spec.TracePath)
			if err != nil {
				log.Fatal(err)
			}
			spec.ArtifactDigest = d.String()
			spec.ArtifactCRC = crc
			log.Printf("serving trace artifact %s (%d bytes) at /artifacts/", d, size)
		}
		cfg := coord.Config{
			Job:                spec,
			Shards:             *shards,
			LeaseTTL:           *leaseTTL,
			Heartbeat:          *heartbeat,
			LocalFallbackAfter: *localFallback,
			LocalParallelism:   *par,
			Logf:               log.Printf,
		}
		code := runCoordinator(ctx, *serve, cfg, coordinatorOptions{
			ckptPath: *ckptPath, resume: *resume, csv: *csv,
			publishDir: *publishDir, sec: sec,
		})
		stop()
		stopProf()
		os.Exit(code)
	}

	code := runLocal(ctx, spec, shardI, shardN, localOptions{
		par: *par, timeout: *timeout, retries: *retries,
		ckptPath: *ckptPath, resume: *resume, csv: *csv,
	})
	stop()
	stopProf()
	os.Exit(code)
}

type workerOptions struct {
	id          string
	par         int
	retries     int
	cacheDir    string
	cacheMB     int64
	throttleBPS int64
	sec         store.Security

	// s3Endpoint, when set, points cache fills at a bucket instead of the
	// coordinator's /artifacts/ endpoint, so a large fleet does not funnel
	// every cold fetch through one process.
	s3Endpoint  string
	s3Bucket    string
	s3Prefix    string
	s3Region    string
	s3AccessKey string
	s3SecretKey string
}

// runWorker joins a coordinator and simulates leased shards until the grid
// is done. Every grid parameter comes from the coordinator's job spec;
// traces the spec names by digest are fetched from the coordinator into
// the worker's local artifact cache.
func runWorker(ctx context.Context, addr string, wo workerOptions) error {
	if !strings.Contains(addr, "://") {
		// A worker given a CA to trust is clearly expected to speak TLS.
		if wo.sec.CAFile != "" {
			addr = "https://" + addr
		} else {
			addr = "http://" + addr
		}
	}
	id := wo.id
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	client, err := wo.sec.Client()
	if err != nil {
		return err
	}
	cacheDir := wo.cacheDir
	if cacheDir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			base = os.TempDir()
		}
		cacheDir = filepath.Join(base, "mlcache", "artifacts")
	}
	cache, err := store.NewCache(cacheDir, wo.cacheMB<<20)
	if err != nil {
		return err
	}
	w := &coord.Worker{
		ID:               id,
		Coordinator:      addr,
		Client:           client,
		Parallelism:      wo.par,
		PointRetries:     wo.retries,
		Artifacts:        cache,
		FetchThrottleBPS: wo.throttleBPS,
		Logf:             log.Printf,
	}
	if wo.s3Endpoint != "" {
		s3, err := backend.NewS3(backend.S3Config{
			Endpoint:  wo.s3Endpoint,
			Bucket:    wo.s3Bucket,
			Prefix:    wo.s3Prefix,
			Region:    wo.s3Region,
			AccessKey: wo.s3AccessKey,
			SecretKey: wo.s3SecretKey,
			Insecure:  wo.sec.Insecure,
			Logf:      log.Printf,
		})
		if err != nil {
			return err
		}
		w.Fetch = backend.Fetcher{B: s3}
		log.Printf("worker %s: filling artifact cache from %s/%s", id, wo.s3Endpoint, wo.s3Bucket)
	}
	err = w.Run(ctx)
	if st := cache.Stats(); st.Fetches > 0 || st.Hits > 0 {
		log.Printf("artifact cache %s: %d hits, %d fetches, %d evictions, %d bytes resident",
			cacheDir, st.Hits, st.Fetches, st.Evictions, st.Bytes)
	}
	return err
}

type coordinatorOptions struct {
	ckptPath   string
	resume     bool
	csv        bool
	publishDir string
	sec        store.Security
}

// resolverChain tries each resolver in turn; the coordinator's own trace
// artifact first, then the publish store.
type resolverChain []store.Resolver

func (rc resolverChain) Resolve(d store.Digest) (string, error) {
	var lastErr error = os.ErrNotExist
	for _, r := range rc {
		p, err := r.Resolve(d)
		if err == nil {
			return p, nil
		}
		lastErr = err
	}
	return "", lastErr
}

// runCoordinator serves the grid to workers, merges their results, and
// renders the merged table. With -checkpoint, merged points are journaled
// exactly like local sweeps, and -resume seeds already-journaled points.
// The coordinator doubles as the artifact origin: its own trace artifact
// (and, with -publish, any uploaded object) is served at /artifacts/.
func runCoordinator(ctx context.Context, addr string, cfg coord.Config, co coordinatorOptions) int {
	pts := cfg.Job.Points()
	if co.resume {
		prior := loadPrior(co.ckptPath, len(pts))
		cfg.Prior = map[int]cpu.Result{}
		for i, pt := range pts {
			if run, ok := prior[pt.String()]; ok {
				cfg.Prior[i] = run
			}
		}
	}
	var journal *checkpoint.Journal
	if co.ckptPath != "" {
		var err error
		journal, err = checkpoint.Open(co.ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		cfg.OnResult = func(pt sweep.Point, run cpu.Result) {
			if err := journal.Append(pt.String(), run); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}
	}

	c, err := coord.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var sources resolverChain
	if d := cfg.Job.Digest(); !d.IsZero() {
		sources = append(sources, store.Static{d: cfg.Job.TracePath})
	}
	artifacts := &store.Handler{Source: sources, Logf: log.Printf}
	if co.publishDir != "" {
		uploads, err := store.OpenFileStore(co.publishDir)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, uploads)
		artifacts.Source = sources
		artifacts.Uploads = uploads
	}
	root := http.NewServeMux()
	root.Handle(store.PathArtifacts, artifacts)
	root.Handle("/", c.Handler())

	// Same slowloris hardening as cmd/mlcserve: bound header reads, header
	// size, and idle keep-alives. No write timeout — workers hold
	// long-polls and artifact downloads legitimately.
	srv := &http.Server{
		Addr:              addr,
		Handler:           co.sec.RequireAuth(root),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() {
		if co.sec.TLSServer() {
			serveErr <- srv.ListenAndServeTLS(co.sec.CertFile, co.sec.KeyFile)
		} else {
			serveErr <- srv.ListenAndServe()
		}
	}()
	log.Printf("coordinator on %s: %d grid points in %d shards (join with: sweep -join %s)",
		addr, len(pts), cfg.Shards, addr)

	runErr := c.Run(ctx)
	select {
	case err := <-serveErr:
		// ListenAndServe only returns on failure; surface it (a bad -serve
		// address would otherwise look like a hang until local fallback).
		log.Fatalf("serve %s: %v", addr, err)
	default:
	}
	if runErr == nil {
		// Keep answering for a beat: workers that were sleeping on a wait
		// poll (capped at 1s) learn the grid is done instead of finding a
		// dead socket. Workers whose upload finished the grid already know.
		time.Sleep(1200 * time.Millisecond)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutCtx)

	if n := c.TraceSkipped(); n > 0 {
		log.Printf("workers skipped up to %d corrupt trace record(s) during decode", n)
	}
	results := c.Results()
	if err := sweep.WriteTable(os.Stdout, results, experiments.CPUCycleNS, co.csv); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		done, total := c.Done()
		msg := fmt.Sprintf("interrupted: %d of %d points done", done, total)
		if co.ckptPath != "" {
			msg += "; rerun with -resume to continue"
		} else {
			msg += "; use -checkpoint to make sweeps resumable"
		}
		log.Print(msg)
		return 1
	}
	return 0
}

type localOptions struct {
	par      int
	timeout  time.Duration
	retries  int
	ckptPath string
	resume   bool
	csv      bool
}

// runLocal is the classic single-process sweep, built on the same job spec
// and renderer the distributed modes use, so all three produce identical
// bytes for identical grids.
func runLocal(ctx context.Context, spec coord.JobSpec, shardI, shardN int, lo localOptions) int {
	runner, res, err := spec.NewRunner()
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if res.TraceSkipped > 0 {
		log.Printf("trace: skipped %d corrupt record(s) during decode", res.TraceSkipped)
	}
	pts := spec.Points()
	if shardN > 1 {
		all := len(pts)
		pts = sweep.Shard(pts, shardI, shardN)
		log.Printf("shard %d/%d: %d of %d grid points", shardI, shardN, len(pts), all)
	}

	// Salvage prior results and open the journal.
	prior := map[string]cpu.Result{}
	if lo.resume {
		prior = loadPrior(lo.ckptPath, len(pts))
	}
	var journal *checkpoint.Journal
	if lo.ckptPath != "" {
		journal, err = checkpoint.Open(lo.ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
	}

	opts := sweep.Options{
		Parallelism:  lo.par,
		PointTimeout: lo.timeout,
		Retries:      lo.retries,
		Backoff:      200 * time.Millisecond,
	}
	if len(prior) > 0 {
		opts.Skip = func(pt sweep.Point) bool {
			_, ok := prior[pt.String()]
			return ok
		}
	}
	if journal != nil {
		opts.OnResult = func(res sweep.Result) {
			if err := journal.Append(res.Point.String(), res.Run); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}
	}

	results, runErr := runner.RunContext(ctx, pts, opts)

	// Fill skipped points from the journal so the report covers the whole
	// grid, and split out the failures.
	var done, failed int
	for i := range results {
		if results[i].Skipped {
			results[i].Run = prior[results[i].Point.String()]
			done++
			continue
		}
		if results[i].Err != nil {
			failed++
			continue
		}
		done++
	}

	if err := sweep.WriteTable(os.Stdout, results, experiments.CPUCycleNS, lo.csv); err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		// On interrupt, skip the flood of "context canceled" lines for the
		// points that never ran; per-point failures (including timeouts)
		// are always itemized.
		if r.Err != nil && !(runErr != nil && sweep.Canceled(r.Err)) {
			log.Printf("point %v failed after %d attempt(s): %v", r.Point, r.Attempts, r.Err)
		}
	}
	switch {
	case runErr != nil:
		msg := fmt.Sprintf("interrupted: %d of %d points done", done, len(pts))
		if lo.ckptPath != "" {
			msg += "; rerun with -resume to continue"
		} else {
			msg += "; use -checkpoint to make sweeps resumable"
		}
		log.Print(msg)
		return 1
	case failed > 0:
		log.Printf("%d of %d points failed", failed, len(pts))
		return 1
	}
	return 0
}

// loadPrior reads a checkpoint journal into point-keyed results; a missing
// file means a fresh start, anything else is fatal.
func loadPrior(ckptPath string, total int) map[string]cpu.Result {
	prior := map[string]cpu.Result{}
	set, err := checkpoint.Load(ckptPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		log.Printf("checkpoint %s not found; starting fresh", ckptPath)
		return prior
	case err != nil:
		log.Fatal(err)
	}
	for key, raw := range set.Records {
		var run cpu.Result
		if err := json.Unmarshal(raw, &run); err != nil {
			log.Printf("checkpoint: record %s unreadable, will re-simulate: %v", key, err)
			continue
		}
		prior[key] = run
	}
	if set.Dropped > 0 {
		log.Printf("checkpoint: dropped %d corrupt record(s)", set.Dropped)
	}
	log.Printf("resuming: %d of %d points already simulated", len(prior), total)
	return prior
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want lo-hi, got %q", s)
	}
	lo, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	if lo <= 0 || hi < lo {
		return 0, 0, fmt.Errorf("range %q out of order", s)
	}
	return lo, hi, nil
}

// Command sweep runs a grid of simulations over the L2 design space of the
// base machine — size × cycle time × associativity — and emits a table or
// CSV of relative execution times and miss ratios, for exploring design
// points beyond the paper's figures.
//
// Sweeps are fault-tolerant: points run on a worker pool, a panic or error
// in one simulation fails only that point, and with -checkpoint the
// completed points are journaled so an interrupted run (Ctrl-C, crash,
// timeout) can continue where it left off with -resume.
//
// Instead of the synthetic workload, -trace simulates a trace file; an
// .mlca artifact (see cmd/tracegen -format artifact) is mmap-ed straight
// into arena form, so several sweep processes opening the same artifact
// share one page-cache copy and pay zero decode work. -shard i/n runs only
// the i-th of n disjoint partitions of the grid — launch n processes with
// the same artifact and shards 0/n .. n-1/n to split a sweep across
// processes or machines.
//
// Usage:
//
//	sweep -sizes 16-4096 -cycles 1-10 -assoc 1 -n 1000000
//	sweep -sizes 64-1024 -cycles 2-6 -assoc 2 -l1 32 -csv > out.csv
//	sweep -sizes 16-4096 -cycles 1-10 -checkpoint run.ckpt
//	sweep -sizes 16-4096 -cycles 1-10 -checkpoint run.ckpt -resume
//	sweep -trace mix.mlca -shard 0/4 -csv > shard0.csv
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mlcache/internal/checkpoint"
	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/prof"
	"mlcache/internal/report"
	"mlcache/internal/sweep"
	"mlcache/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		sizesArg  = flag.String("sizes", "16-4096", "L2 size range in KB (lo-hi, powers of two)")
		cyclesArg = flag.String("cycles", "1-10", "L2 cycle time range in CPU cycles (lo-hi)")
		assoc     = flag.Int("assoc", 1, "L2 associativity (0 = fully associative)")
		l1        = flag.Int("l1", 4, "total L1 size in KB (split I+D)")
		slow      = flag.Bool("slowmem", false, "use the 2x slower main memory")
		n         = flag.Int64("n", 1_000_000, "trace length in references (with -trace: 0 = whole file, else a cap)")
		seed      = flag.Int64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "trace file to sweep (text/binary/artifact by suffix; default: synthetic workload)")
		shardArg  = flag.String("shard", "", "run only shard i of n of the grid, as i/n (e.g. 0/4)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")

		par      = flag.Int("par", 0, "concurrent simulations (0 = GOMAXPROCS)")
		ckptPath = flag.String("checkpoint", "", "journal completed points to this file")
		resume   = flag.Bool("resume", false, "skip points already journaled in -checkpoint")
		timeout  = flag.Duration("point-timeout", 0, "per-point simulation timeout (0 = none)")
		retries  = flag.Int("retries", 0, "extra attempts for a failed point")
		check    = flag.Bool("check", false, "validate cache-state invariants after every access (slow)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	loS, hiS, err := parseRange(*sizesArg)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}
	loC, hiC, err := parseRange(*cyclesArg)
	if err != nil {
		log.Fatalf("bad -cycles: %v", err)
	}
	if *resume && *ckptPath == "" {
		log.Fatal("-resume needs -checkpoint")
	}
	shardI, shardN, err := sweep.ParseShard(*shardArg)
	if err != nil {
		log.Fatalf("bad -shard: %v", err)
	}

	// SIGINT/SIGTERM cancel the sweep; in-flight points stop at the next
	// stream check and completed work is kept (and journaled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mem := mainmem.Base()
	if *slow {
		mem = mainmem.Slow()
	}
	grid := sweep.Grid{
		SizesBytes: sweep.SizesPow2(loS, hiS),
		CyclesNS:   sweep.CyclesRange(int(loC), int(hiC), experiments.CPUCycleNS),
	}
	runner := sweep.Runner{
		Configure: func(pt sweep.Point) memsys.Config {
			cfg := experiments.BaseMachine(*l1,
				experiments.L2Config(pt.L2SizeBytes, pt.L2CycleNS, pt.L2Assoc), mem)
			cfg.CheckInvariants = *check
			return cfg
		},
	}
	if *tracePath != "" {
		// An artifact is mmap-ed zero-copy (shared page cache between
		// shards on one machine); other codecs are decoded once here.
		arena, closer, err := trace.LoadArena(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		if *n > 0 && int64(arena.Len()) > *n {
			arena = trace.NewArena(arena.Refs()[:*n])
		}
		runner.Arena = arena
		runner.CPU = experiments.Options{Warmup: int64(arena.Len()) / 5}.CPU()
	} else {
		opt := experiments.Options{Seed: *seed, Refs: *n, Warmup: *n / 5}
		runner.Trace = opt.Stream
		runner.CPU = opt.CPU()
	}
	var pts []sweep.Point
	for _, s := range grid.SizesBytes {
		for _, c := range grid.CyclesNS {
			pts = append(pts, sweep.Point{L2SizeBytes: s, L2CycleNS: c, L2Assoc: *assoc})
		}
	}
	if shardN > 1 {
		pts = sweep.Shard(pts, shardI, shardN)
		log.Printf("shard %d/%d: %d of %d grid points", shardI, shardN, len(pts), len(grid.SizesBytes)*len(grid.CyclesNS))
	}

	// Salvage prior results and open the journal.
	prior := map[string]cpu.Result{}
	if *resume {
		set, err := checkpoint.Load(*ckptPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			log.Printf("checkpoint %s not found; starting fresh", *ckptPath)
		case err != nil:
			log.Fatal(err)
		default:
			for key, raw := range set.Records {
				var run cpu.Result
				if err := json.Unmarshal(raw, &run); err != nil {
					log.Printf("checkpoint: record %s unreadable, will re-simulate: %v", key, err)
					continue
				}
				prior[key] = run
			}
			if set.Dropped > 0 {
				log.Printf("checkpoint: dropped %d corrupt record(s)", set.Dropped)
			}
			log.Printf("resuming: %d of %d points already simulated", len(prior), len(pts))
		}
	}
	var journal *checkpoint.Journal
	if *ckptPath != "" {
		journal, err = checkpoint.Open(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
	}

	opts := sweep.Options{
		Parallelism:  *par,
		PointTimeout: *timeout,
		Retries:      *retries,
		Backoff:      200 * time.Millisecond,
	}
	if len(prior) > 0 {
		opts.Skip = func(pt sweep.Point) bool {
			_, ok := prior[pt.String()]
			return ok
		}
	}
	if journal != nil {
		opts.OnResult = func(res sweep.Result) {
			if err := journal.Append(res.Point.String(), res.Run); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}
	}

	results, runErr := runner.RunContext(ctx, pts, opts)
	stop() // restore default signal handling while reporting

	// Fill skipped points from the journal so the report covers the whole
	// grid, and split out the failures.
	var done, failed int
	for i := range results {
		if results[i].Skipped {
			results[i].Run = prior[results[i].Point.String()]
			done++
			continue
		}
		if results[i].Err != nil {
			failed++
			continue
		}
		done++
	}

	t := report.NewTable("L2KB", "cycles", "assoc", "reltime", "CPI", "L2local", "L2global", "status")
	for _, r := range results {
		status := "ok"
		if r.Skipped {
			status = "ckpt"
		}
		if r.Err != nil {
			t.AddRow(
				report.SizeLabel(r.Point.L2SizeBytes),
				strconv.FormatInt(r.Point.L2CycleNS/experiments.CPUCycleNS, 10),
				strconv.Itoa(r.Point.L2Assoc),
				"-", "-", "-", "-", "FAILED",
			)
			continue
		}
		l2 := r.Run.Mem.Down[0]
		t.AddRow(
			report.SizeLabel(r.Point.L2SizeBytes),
			strconv.FormatInt(r.Point.L2CycleNS/experiments.CPUCycleNS, 10),
			strconv.Itoa(r.Point.L2Assoc),
			fmt.Sprintf("%.4f", r.Run.RelTime),
			fmt.Sprintf("%.4f", r.Run.CPI),
			report.Ratio(l2.LocalReadMissRatio()),
			report.Ratio(l2.GlobalReadMissRatio(r.Run.CPUReads)),
			status,
		)
	}
	if *csv {
		err = t.CSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		// On interrupt, skip the flood of "context canceled" lines for the
		// points that never ran; per-point failures (including timeouts)
		// are always itemized.
		if r.Err != nil && !(runErr != nil && sweep.Canceled(r.Err)) {
			log.Printf("point %v failed after %d attempt(s): %v", r.Point, r.Attempts, r.Err)
		}
	}
	switch {
	case runErr != nil:
		msg := fmt.Sprintf("interrupted: %d of %d points done", done, len(pts))
		if *ckptPath != "" {
			msg += "; rerun with -resume to continue"
		} else {
			msg += "; use -checkpoint to make sweeps resumable"
		}
		log.Print(msg)
		stopProf() // os.Exit skips the deferred stop
		os.Exit(1)
	case failed > 0:
		log.Printf("%d of %d points failed", failed, len(pts))
		stopProf()
		os.Exit(1)
	}
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want lo-hi, got %q", s)
	}
	lo, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	if lo <= 0 || hi < lo {
		return 0, 0, fmt.Errorf("range %q out of order", s)
	}
	return lo, hi, nil
}

// Command sweep runs a grid of simulations over the L2 design space of the
// base machine — size × cycle time × associativity — and emits a table or
// CSV of relative execution times and miss ratios, for exploring design
// points beyond the paper's figures.
//
// Usage:
//
//	sweep -sizes 16-4096 -cycles 1-10 -assoc 1 -n 1000000
//	sweep -sizes 64-1024 -cycles 2-6 -assoc 2 -l1 32 -csv > out.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/report"
	"mlcache/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		sizesArg  = flag.String("sizes", "16-4096", "L2 size range in KB (lo-hi, powers of two)")
		cyclesArg = flag.String("cycles", "1-10", "L2 cycle time range in CPU cycles (lo-hi)")
		assoc     = flag.Int("assoc", 1, "L2 associativity (0 = fully associative)")
		l1        = flag.Int("l1", 4, "total L1 size in KB (split I+D)")
		slow      = flag.Bool("slowmem", false, "use the 2x slower main memory")
		n         = flag.Int64("n", 1_000_000, "trace length in references")
		seed      = flag.Int64("seed", 1, "workload seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	loS, hiS, err := parseRange(*sizesArg)
	if err != nil {
		log.Fatalf("bad -sizes: %v", err)
	}
	loC, hiC, err := parseRange(*cyclesArg)
	if err != nil {
		log.Fatalf("bad -cycles: %v", err)
	}

	mem := mainmem.Base()
	if *slow {
		mem = mainmem.Slow()
	}
	opt := experiments.Options{Seed: *seed, Refs: *n, Warmup: *n / 5}
	grid := sweep.Grid{
		SizesBytes: sweep.SizesPow2(loS, hiS),
		CyclesNS:   sweep.CyclesRange(int(loC), int(hiC), experiments.CPUCycleNS),
	}
	runner := sweep.Runner{
		Configure: func(pt sweep.Point) memsys.Config {
			return experiments.BaseMachine(*l1,
				experiments.L2Config(pt.L2SizeBytes, pt.L2CycleNS, pt.L2Assoc), mem)
		},
		Trace: opt.Stream,
		CPU:   opt.CPU(),
	}
	var pts []sweep.Point
	for _, s := range grid.SizesBytes {
		for _, c := range grid.CyclesNS {
			pts = append(pts, sweep.Point{L2SizeBytes: s, L2CycleNS: c, L2Assoc: *assoc})
		}
	}
	results, err := runner.RunPoints(pts)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("L2KB", "cycles", "assoc", "reltime", "CPI", "L2local", "L2global")
	for _, r := range results {
		l2 := r.Run.Mem.Down[0]
		t.AddRow(
			report.SizeLabel(r.Point.L2SizeBytes),
			strconv.FormatInt(r.Point.L2CycleNS/experiments.CPUCycleNS, 10),
			strconv.Itoa(r.Point.L2Assoc),
			fmt.Sprintf("%.4f", r.Run.RelTime),
			fmt.Sprintf("%.4f", r.Run.CPI),
			report.Ratio(l2.LocalReadMissRatio()),
			report.Ratio(l2.GlobalReadMissRatio(r.Run.CPUReads)),
		)
	}
	if *csv {
		err = t.CSV(os.Stdout)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func parseRange(s string) (lo, hi int64, err error) {
	parts := strings.SplitN(s, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want lo-hi, got %q", s)
	}
	lo, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	if lo <= 0 || hi < lo {
		return 0, 0, fmt.Errorf("range %q out of order", s)
	}
	return lo, hi, nil
}

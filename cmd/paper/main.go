// Command paper regenerates the tables and figures of Przybylski,
// Horowitz & Hennessy, "Characteristics of Performance-Optimal Multi-Level
// Cache Hierarchies" (ISCA 1989) on the synthetic workload.
//
// Usage:
//
//	paper -list
//	paper -fig 3-1            # one figure
//	paper -all                # everything, in paper order
//	paper -all -quick         # reduced trace length (fast, noisier)
//	paper -refs 5000000       # custom trace length
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"mlcache/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	var (
		fig   = flag.String("fig", "", "experiment id to run (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment ids")
		quick = flag.Bool("quick", false, "use the reduced trace length")
		refs  = flag.Int64("refs", 0, "override trace length in references")
		seed  = flag.Int64("seed", 1, "workload seed")
		par   = flag.Int("par", 0, "max parallel simulations (0 = GOMAXPROCS)")
		out   = flag.String("o", "", "also write the output to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *refs > 0 {
		opt.Refs = *refs
		opt.Warmup = *refs / 5
	}
	opt.Seed = *seed
	opt.Parallelism = *par
	ctx := experiments.NewContext(opt)

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *fig != "":
		e, ok := experiments.ByID(*fig)
		if !ok {
			log.Fatalf("unknown experiment %q; known: %s", *fig, strings.Join(experiments.IDs(), ", "))
		}
		toRun = []experiments.Experiment{e}
	default:
		log.Fatal("nothing to do: pass -fig <id>, -all, or -list")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	for _, e := range toRun {
		start := time.Now()
		fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(ctx, w); err != nil {
			log.Fatalf("experiment %s: %v", e.ID, err)
		}
		fmt.Fprintf(w, "---- (%s, %d refs) ----\n\n", time.Since(start).Round(time.Millisecond), opt.Refs)
	}
}

// Command mlcsim simulates a reference trace against a cache-hierarchy
// description file and reports execution time and per-level statistics —
// the direct equivalent of the paper's simulation system ("reads a file
// that specifies the depth of the cache hierarchy and the configuration of
// each cache").
//
// Usage:
//
//	mlcsim -config machine.cfg -trace refs.trc
//	mlcsim -config machine.cfg -trace refs.mlca
//	mlcsim -config machine.cfg -synth -n 2000000
//
// Trace files use the text codec by default, the binary codec for files
// ending in .bin or .mlct, and the mmap artifact codec for files ending in
// .mlca (opened with zero decode work and shared page-cache across
// concurrent mlcsim/sweep processes).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mlcache/internal/config"
	"mlcache/internal/cpu"
	"mlcache/internal/memsys"
	"mlcache/internal/prof"
	"mlcache/internal/report"
	"mlcache/internal/synth"
	"mlcache/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mlcsim: ")
	var (
		cfgPath   = flag.String("config", "", "hierarchy description file (required)")
		tracePath = flag.String("trace", "", "trace file to simulate")
		useSynth  = flag.Bool("synth", false, "simulate the synthetic multiprogramming workload")
		n         = flag.Int64("n", 2_000_000, "references to simulate (with -synth, or as a cap on -trace)")
		seed      = flag.Int64("seed", 1, "synthetic workload seed")
		warmup    = flag.Int64("warmup", -1, "warm-up references excluded from statistics (-1 = 20%)")
		lenient   = flag.Int("lenient", 0, "skip up to N corrupt trace records (-1 = unlimited, 0 = strict)")
		check     = flag.Bool("check", false, "validate cache-state invariants after every access (slow)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *cfgPath == "" {
		log.Fatal("missing -config")
	}
	if (*tracePath == "") == !*useSynth {
		log.Fatal("pass exactly one of -trace or -synth")
	}

	f, err := os.Open(*cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := config.Parse(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	cfg.CheckInvariants = *check
	h, err := memsys.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var s trace.Stream
	var skips func() int64
	if *useSynth {
		s = synth.PaperStream(*seed, *n)
	} else {
		ts, closer, err := trace.OpenPath(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer closer.Close()
		s = ts
		if *lenient != 0 {
			if trace.IsArtifactPath(*tracePath) {
				// Artifacts are checksum-validated whole at open; there is
				// no per-record corruption left to skip.
				log.Print("note: -lenient has no effect on artifact traces")
			}
			ls := trace.Lenient(s, *lenient)
			s = ls
			if sk, ok := ls.(trace.SkipCounter); ok {
				skips = sk.Skips
			}
		}
		if *n > 0 {
			s = trace.Limit(s, *n)
		}
	}

	w := *warmup
	if w < 0 {
		w = *n / 5
	}
	res, err := cpu.Run(h, s, cpu.Config{CycleNS: cfg.CPUCycleNS, WarmupRefs: w})
	if err != nil {
		log.Fatal(err)
	}
	if skips != nil && skips() > 0 {
		log.Printf("warning: skipped %d corrupt trace record(s); addresses after a skip may be offset", skips())
	}

	printResult(res, cfg)
}

func printResult(res cpu.Result, cfg memsys.Config) {
	fmt.Printf("instructions: %d   loads: %d   stores: %d\n", res.Instructions, res.Loads, res.Stores)
	fmt.Printf("execution:    %d cycles (%.3f ms at %dns/cycle)\n",
		res.Cycles, float64(res.TimeNS)/1e6, cfg.CPUCycleNS)
	fmt.Printf("CPI: %.3f   relative execution time: %.3f\n\n", res.CPI, res.RelTime)

	t := report.NewTable("level", "read refs", "read miss", "local", "global", "write refs", "writebacks")
	addLevel := func(ls *memsys.LevelStats) {
		if ls == nil {
			return
		}
		t.AddRow(
			ls.Name,
			fmt.Sprintf("%d", ls.Cache.ReadRefs),
			fmt.Sprintf("%d", ls.Cache.ReadMisses),
			report.Ratio(ls.LocalReadMissRatio()),
			report.Ratio(ls.GlobalReadMissRatio(res.CPUReads)),
			fmt.Sprintf("%d", ls.Cache.WriteRefs),
			fmt.Sprintf("%d", ls.Cache.Writebacks),
		)
	}
	addLevel(res.Mem.L1I)
	addLevel(res.Mem.L1D)
	addLevel(res.Mem.L1)
	for i := range res.Mem.Down {
		addLevel(&res.Mem.Down[i])
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmain memory: %d reads, %d writes, %.1f us queueing\n",
		res.Mem.MemReads, res.Mem.MemWrites, float64(res.Mem.MemStallNS)/1e3)
	if res.Mem.TLB != nil {
		fmt.Printf("TLB: %d refs, %d misses (%.4f), %.1f us walking\n",
			res.Mem.TLB.Refs, res.Mem.TLB.Misses, res.Mem.TLB.MissRatio(),
			float64(res.Mem.TLB.WalkNS)/1e3)
	}

	fmt.Printf("\nstall distribution (fraction of issue slots stalled at most N cycles):\n")
	for _, b := range []int{0, 2, 4, 6, 8} {
		bound := 1 << b
		label := fmt.Sprintf("<%d", bound)
		if b == 0 {
			label = "0"
		}
		fmt.Printf("  %-5s %6.2f%%\n", label, 100*res.StallAtMost(b))
	}
}

// Command benchjson measures simulator throughput and writes the result
// as a small JSON file, so CI can track the performance trajectory of the
// engine across commits. It runs the same workload as
// BenchmarkSimulatorThroughput — the base machine of §2 over the
// calibrated synthetic trace — decoding the trace once into an arena and
// timing the simulation passes alone.
//
// With -baseline it also enforces a trend gate: if measured throughput
// falls below baseline_refs_per_sec × tolerance, benchjson exits non-zero
// and the CI build fails instead of silently recording the regression.
// The output JSON is deliberately free of timestamps and other
// run-identifying noise, so artifacts from identical runs diff clean.
//
// Usage:
//
//	benchjson                        # writes BENCH_simulator.json
//	benchjson -n 500000 -runs 5 -o bench.json
//	benchjson -baseline BENCH_baseline.json -tolerance 0.85
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/synth"
	"mlcache/internal/trace"
)

// result is the JSON schema; field names are stable so downstream tooling
// can diff files across commits. It intentionally carries no timestamp:
// two identical runs must produce byte-identical files.
type result struct {
	Name       string  `json:"name"`
	Refs       int64   `json:"refs"`
	Runs       int     `json:"runs"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RefsPerSec float64 `json:"refs_per_sec"`
}

// gate compares a measurement against a baseline: it returns an error when
// current throughput is below baseline × tolerance. A faster-than-baseline
// run always passes — the gate is a floor, not a pin.
func gate(current, baseline result, tolerance float64) error {
	if tolerance <= 0 || tolerance > 1 {
		return fmt.Errorf("tolerance %.3f out of (0, 1]", tolerance)
	}
	if baseline.RefsPerSec <= 0 {
		return fmt.Errorf("baseline %q has non-positive refs_per_sec %.1f", baseline.Name, baseline.RefsPerSec)
	}
	floor := baseline.RefsPerSec * tolerance
	if current.RefsPerSec < floor {
		return fmt.Errorf("throughput regression: %.0f refs/s is below %.0f (baseline %.0f x tolerance %.2f)",
			current.RefsPerSec, floor, baseline.RefsPerSec, tolerance)
	}
	return nil
}

func loadBaseline(path string) (result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return result{}, err
	}
	var r result
	if err := json.Unmarshal(buf, &r); err != nil {
		return result{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	return r, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		n         = flag.Int64("n", 200_000, "trace length in references")
		runs      = flag.Int("runs", 3, "simulation passes to time (best pass is reported)")
		seed      = flag.Int64("seed", 1, "workload seed")
		out       = flag.String("o", "BENCH_simulator.json", "output file")
		baseline  = flag.String("baseline", "", "baseline JSON to gate against (empty = record only)")
		tolerance = flag.Float64("tolerance", 0.85, "fail when refs_per_sec < baseline x tolerance")
	)
	flag.Parse()

	cfg := experiments.BaseMachine(4,
		experiments.L2Config(512*1024, 30, 1), mainmem.Base())
	arena, err := trace.Materialize(synth.PaperStream(*seed, *n))
	if err != nil {
		log.Fatal(err)
	}
	h, err := memsys.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var refs int64
	best := time.Duration(1<<63 - 1)
	for i := 0; i < *runs; i++ {
		h.Reset()
		start := time.Now()
		res, err := cpu.Run(h, arena.Cursor(), cpu.Config{CycleNS: cfg.CPUCycleNS})
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		refs = res.CPUReads + res.Stores
		if elapsed < best {
			best = elapsed
		}
	}

	r := result{
		Name:       "SimulatorThroughput",
		Refs:       refs,
		Runs:       *runs,
		ElapsedSec: best.Seconds(),
		RefsPerSec: float64(refs) / best.Seconds(),
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f refs/s (%d refs, best of %d)\n", *out, r.RefsPerSec, refs, *runs)

	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		if err := gate(r, base, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gate ok: %.0f refs/s >= %.0f (baseline %.0f x %.2f)\n",
			r.RefsPerSec, base.RefsPerSec**tolerance, base.RefsPerSec, *tolerance)
	}
}

// Command benchjson measures simulator throughput and writes the result
// as a small JSON file, so CI can track the performance trajectory of the
// engine across commits. It runs the same workload as
// BenchmarkSimulatorThroughput — the base machine of §2 over the
// calibrated synthetic trace — decoding the trace once into an arena and
// timing the simulation passes alone.
//
// Usage:
//
//	benchjson                        # writes BENCH_simulator.json
//	benchjson -n 500000 -runs 5 -o bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/synth"
	"mlcache/internal/trace"
)

// result is the JSON schema; field names are stable so downstream tooling
// can diff files across commits.
type result struct {
	Name       string  `json:"name"`
	Refs       int64   `json:"refs"`
	Runs       int     `json:"runs"`
	ElapsedSec float64 `json:"elapsed_sec"`
	RefsPerSec float64 `json:"refs_per_sec"`
	UnixTime   int64   `json:"unix_time"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		n    = flag.Int64("n", 200_000, "trace length in references")
		runs = flag.Int("runs", 3, "simulation passes to time (best pass is reported)")
		seed = flag.Int64("seed", 1, "workload seed")
		out  = flag.String("o", "BENCH_simulator.json", "output file")
	)
	flag.Parse()

	cfg := experiments.BaseMachine(4,
		experiments.L2Config(512*1024, 30, 1), mainmem.Base())
	arena, err := trace.Materialize(synth.PaperStream(*seed, *n))
	if err != nil {
		log.Fatal(err)
	}
	h, err := memsys.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var refs int64
	best := time.Duration(1<<63 - 1)
	for i := 0; i < *runs; i++ {
		h.Reset()
		start := time.Now()
		res, err := cpu.Run(h, arena.Cursor(), cpu.Config{CycleNS: cfg.CPUCycleNS})
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		refs = res.CPUReads + res.Stores
		if elapsed < best {
			best = elapsed
		}
	}

	r := result{
		Name:       "SimulatorThroughput",
		Refs:       refs,
		Runs:       *runs,
		ElapsedSec: best.Seconds(),
		RefsPerSec: float64(refs) / best.Seconds(),
		UnixTime:   time.Now().Unix(),
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.0f refs/s (%d refs, best of %d)\n", *out, r.RefsPerSec, refs, *runs)
}

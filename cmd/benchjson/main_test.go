package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func measured(refsPerSec float64) result {
	return result{
		Name:       "SimulatorThroughput",
		Refs:       200_000,
		Runs:       3,
		ElapsedSec: 200_000 / refsPerSec,
		RefsPerSec: refsPerSec,
	}
}

// TestGateFailsOnSyntheticRegression is the acceptance check for the CI
// trend gate: against a doctored baseline where current throughput
// represents a ~30% regression, the 0.85-tolerance gate must fail the
// build; at (or above) current performance it must pass.
func TestGateFailsOnSyntheticRegression(t *testing.T) {
	const tol = 0.85
	current := measured(7_000_000)

	// Doctored baseline: the "previous commit" was ~43% faster, i.e. the
	// current run is a ~30% throughput regression. 0.70 < 0.85 → fail.
	doctored := measured(10_000_000)
	if err := gate(current, doctored, tol); err == nil {
		t.Fatal("gate passed a ~30% regression at tolerance 0.85")
	} else if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("gate error does not name the regression: %v", err)
	}

	// Identical performance passes.
	if err := gate(current, current, tol); err != nil {
		t.Fatalf("gate failed identical performance: %v", err)
	}
	// A small (10%) dip within tolerance passes.
	if err := gate(measured(9_000_000), doctored, tol); err != nil {
		t.Fatalf("gate failed a within-tolerance dip: %v", err)
	}
	// An improvement passes.
	if err := gate(measured(20_000_000), doctored, tol); err != nil {
		t.Fatalf("gate failed an improvement: %v", err)
	}
	// Exactly at the floor passes (gate is strict-less-than).
	if err := gate(measured(10_000_000*tol), doctored, tol); err != nil {
		t.Fatalf("gate failed at the exact floor: %v", err)
	}
}

func TestGateRejectsBadInputs(t *testing.T) {
	cur := measured(1_000_000)
	if err := gate(cur, cur, 0); err == nil {
		t.Fatal("gate accepted tolerance 0")
	}
	if err := gate(cur, cur, 1.5); err == nil {
		t.Fatal("gate accepted tolerance > 1")
	}
	if err := gate(cur, result{Name: "x"}, 0.85); err == nil {
		t.Fatal("gate accepted a baseline without refs_per_sec")
	}
}

// TestLoadCheckedInBaseline pins the repo's BENCH_baseline.json to the
// schema the gate reads: if a rename or a stray timestamp field sneaks in,
// this fails before CI does.
func TestLoadCheckedInBaseline(t *testing.T) {
	base, err := loadBaseline(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Name != "SimulatorThroughput" {
		t.Fatalf("baseline name %q", base.Name)
	}
	if base.RefsPerSec <= 0 {
		t.Fatalf("baseline refs_per_sec %.1f", base.RefsPerSec)
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Timestamps made otherwise-identical runs non-diffable once; keep
	// them out of the schema.
	for _, banned := range []string{"unix_time", "time", "date"} {
		if strings.Contains(string(raw), "\""+banned+"\"") {
			t.Fatalf("baseline contains run-identifying field %q", banned)
		}
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("loadBaseline read a missing file")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Fatal("loadBaseline accepted malformed JSON")
	}
}

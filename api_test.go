package mlcache

import (
	"strings"
	"testing"
)

const baseCfg = `
cpu {
    cycle_ns = 10
}
cache L1I {
    role = instruction
    size = 2KB
    block = 16
    cycle_ns = 10
}
cache L1D {
    role = data
    size = 2KB
    block = 16
    cycle_ns = 10
}
cache L2 {
    level = 2
    size = 512KB
    block = 32
    cycle_ns = 30
}
`

func TestSimulateFacade(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(baseCfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, SyntheticWorkload(1, 100_000), 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.CPI < 1 {
		t.Errorf("implausible result: %v", res)
	}
	if res.Mem.L1GlobalReadMissRatio() <= 0 {
		t.Error("no misses recorded")
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	var cfg Config
	if _, err := Simulate(cfg, Trace{}.Stream(), 0); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFacadeTraceTypes(t *testing.T) {
	tr := Trace{
		{Kind: IFetch, Addr: 0x1000},
		{Kind: Load, Addr: 0x2000},
		{Kind: Store, Addr: 0x3000},
	}
	cfg, err := ParseConfig(strings.NewReader(baseCfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg, tr.Stream(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 1 || res.Loads != 1 || res.Stores != 1 {
		t.Errorf("counts = %d/%d/%d", res.Instructions, res.Loads, res.Stores)
	}
}

// Missratios: a miniature of Figure 3-1 — how an L2's local, global, and
// solo miss ratios relate as its size grows. Demonstrates the paper's
// independence-of-layers result: once the L2 is much larger than the L1,
// its global miss ratio matches what it would score with no L1 at all.
package main

import (
	"fmt"
	"log"
	"os"

	"mlcache/internal/experiments"
	"mlcache/internal/report"
	"mlcache/internal/sweep"
)

func main() {
	log.SetFlags(0)

	opt := experiments.Options{Seed: 1, Refs: 400_000, Warmup: 80_000}
	sizes := sweep.SizesPow2(16, 1024) // 16 KB .. 1 MB
	res, err := experiments.MissRatios(4 /* KB of L1 */, sizes, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4 KB split L1 (global read miss ratio %.4f) over a growing L2:\n\n", res.L1GlobalMiss)
	t := report.NewTable("L2 KB", "local", "global", "solo", "global/solo")
	for _, row := range res.Rows {
		t.AddRow(
			report.SizeLabel(row.L2SizeBytes),
			report.Ratio(row.Local),
			report.Ratio(row.Global),
			report.Ratio(row.Solo),
			fmt.Sprintf("%.2f", row.Global/row.Solo),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsolo miss ratio falls by ×%.2f per doubling (paper: ~0.69)\n", res.SoloDoublingFactor)
	fmt.Println("\nreading the table:")
	fmt.Println(" * local is large — the L1 already absorbed the easy hits;")
	fmt.Println(" * global ≈ solo for L2 ≫ L1 — you can design each level almost independently;")
	fmt.Println(" * that local/global gap is why a slow-but-large L2 wins (§4).")
}

// Multiprogram: run four very different programs — matrix multiply,
// pointer chasing, streaming, and quicksort — through the base machine,
// alone and time-sliced together, and compare CPI. Shows how the simulator
// handles real program structure and how multiprogramming disturbs the
// hierarchy (the reason the paper used multiprogramming traces).
package main

import (
	"fmt"
	"log"
	"os"

	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/report"
	"mlcache/internal/trace"
	"mlcache/internal/workload"
)

func main() {
	log.SetFlags(0)

	kernels := []struct {
		name  string
		trace trace.Trace
	}{
		{"matmul 48x48", must(workload.MatMul(workload.MatMulConfig{N: 48, PID: 1, Base: 1 << 24}))},
		{"pointer chase", must(workload.PointerChase(workload.PointerChaseConfig{
			Nodes: 8192, Steps: 120_000, Seed: 7, PID: 2, Base: 2 << 24, Stride: 64,
		}))},
		{"stream triad", must(workload.Stream(workload.StreamConfig{Elems: 16384, Iters: 4, PID: 3, Base: 3 << 24}))},
		{"quicksort 32k", must(workload.Quicksort(workload.QuicksortConfig{N: 32768, Seed: 7, PID: 4, Base: 4 << 24}))},
	}

	t := report.NewTable("workload", "refs", "CPI", "L1 miss", "L2 local miss")
	var streams []trace.Stream
	for _, k := range kernels {
		res := run(k.trace.Stream())
		t.AddRow(k.name,
			fmt.Sprintf("%d", res.CPUReads+res.Stores),
			fmt.Sprintf("%.2f", res.CPI),
			report.Ratio(res.Mem.L1GlobalReadMissRatio()),
			report.Ratio(res.Mem.Down[0].LocalReadMissRatio()),
		)
		streams = append(streams, k.trace.Stream())
	}

	// All four time-sliced on one machine, 20k-reference quanta: each
	// context switch refills the caches from the other programs' debris.
	mixed := run(trace.RoundRobin(20_000, streams...))
	t.AddRow("4-way multiprogrammed",
		fmt.Sprintf("%d", mixed.CPUReads+mixed.Stores),
		fmt.Sprintf("%.2f", mixed.CPI),
		report.Ratio(mixed.Mem.L1GlobalReadMissRatio()),
		report.Ratio(mixed.Mem.Down[0].LocalReadMissRatio()),
	)

	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-process CPI inside the mix (vs running alone):")
	for i, k := range kernels {
		pid := uint16(i + 1)
		ps := mixed.PerPID[pid]
		fmt.Printf("  %-15s %5.2f\n", k.name, ps.CPI(experiments.CPUCycleNS))
	}

	fmt.Println("\nthe mix runs with the locality of none of its parts: context")
	fmt.Println("switches keep evicting each program's working set — which is why")
	fmt.Println("the paper's multiprogramming traces plateau at a nonzero miss")
	fmt.Println("ratio even for multi-megabyte caches.")
}

func run(s trace.Stream) cpu.Result {
	h, err := memsys.New(experiments.BaseMachine(
		4, experiments.L2Config(256*1024, 3*experiments.CPUCycleNS, 1), mainmem.Base()))
	if err != nil {
		log.Fatal(err)
	}
	res, err := cpu.Run(h, s, cpu.Config{CycleNS: experiments.CPUCycleNS})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func must(tr trace.Trace, err error) trace.Trace {
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

// Quickstart: build the paper's base machine — split 4 KB L1 over a 512 KB
// L2 — run half a million references of the synthetic multiprogramming
// workload through it, and print the hierarchy's behaviour.
package main

import (
	"fmt"
	"log"

	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/synth"
)

func main() {
	log.SetFlags(0)

	// The base machine of §2: 10 ns CPU, split 4 KB L1 cycling with the
	// CPU, 512 KB direct-mapped L2 at 3 CPU cycles, write-back everywhere,
	// 4-entry write buffers, 180/100/120 ns main memory.
	cfg := experiments.BaseMachine(
		4, // total L1 KB (2 KB I + 2 KB D)
		experiments.L2Config(512*1024, 3*experiments.CPUCycleNS, 1),
		mainmem.Base(),
	)
	h, err := memsys.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The workload: four interleaved synthetic processes calibrated to
	// the paper's trace statistics (~0.69 miss reduction per cache
	// doubling, 1 ifetch + 0.5 data refs per cycle).
	const refs = 500_000
	res, err := cpu.Run(h, synth.PaperStream(1, refs), cpu.Config{
		CycleNS:    experiments.CPUCycleNS,
		WarmupRefs: refs / 5, // cold-start handling
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d instructions in %d cycles (CPI %.2f)\n",
		res.Instructions, res.Cycles, res.CPI)
	fmt.Printf("relative execution time vs a perfect memory system: %.3f\n\n", res.RelTime)

	s := res.Mem
	fmt.Printf("L1 global read miss ratio: %.4f (the paper's M_L1, ~0.10)\n", s.L1GlobalReadMissRatio())
	l2 := s.Down[0]
	fmt.Printf("L2 local read miss ratio:  %.4f (misses / L1 misses)\n", l2.LocalReadMissRatio())
	fmt.Printf("L2 global read miss ratio: %.4f (misses / CPU reads)\n", l2.GlobalReadMissRatio(res.CPUReads))
	fmt.Printf("\nthe L1 filtered %.1f%% of reads away from the L2, but the L2's\n"+
		"global miss ratio is what main memory sees — that independence is\n"+
		"the paper's §3 result.\n",
		100*(1-float64(l2.Cache.ReadRefs)/float64(res.CPUReads)))
}

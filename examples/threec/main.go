// Threec: decompose cache misses into compulsory, capacity, and conflict
// (Hill's three Cs) across cache sizes and associativities — the mechanism
// behind the paper's §5 break-even analysis: set associativity pays by
// removing exactly the conflict component, so its value tracks the
// conflict share, which this example makes visible.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"mlcache/internal/cache"
	"mlcache/internal/classify"
	"mlcache/internal/report"
	"mlcache/internal/synth"
)

func main() {
	log.SetFlags(0)

	sizesKB := []int64{8, 32, 128, 512}
	assocs := []int{1, 2, 8}

	var cls []*classify.Classifier
	var labels []string
	for _, kb := range sizesKB {
		for _, a := range assocs {
			cls = append(cls, classify.MustNew(cache.Config{
				Name: "probe", SizeBytes: kb * 1024, BlockBytes: 32, Assoc: a,
				Repl: cache.LRU, Write: cache.WriteBack, Alloc: cache.WriteAllocate,
			}))
			labels = append(labels, fmt.Sprintf("%dKB %d-way", kb, a))
		}
	}

	s := synth.PaperStream(1, 400_000)
	for {
		r, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cls {
			c.Access(r.Addr, false)
		}
	}

	t := report.NewTable("cache", "miss ratio", "compulsory", "capacity", "conflict", "conflict share")
	for i, c := range cls {
		b := c.Breakdown()
		_, _, confFrac := b.Fraction()
		t.AddRow(
			labels[i],
			report.Ratio(b.MissRatio()),
			fmt.Sprintf("%d", b.Compulsory),
			fmt.Sprintf("%d", b.Capacity),
			fmt.Sprintf("%d", b.Conflict),
			fmt.Sprintf("%.0f%%", 100*confFrac),
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" * associativity removes only the conflict column — its worth at any")
	fmt.Println("   design point is the conflict share times the miss penalty (§5);")
	fmt.Println(" * capacity misses dominate small caches, compulsory misses large ones;")
	fmt.Println(" * that is why the paper's break-even times shrink as the L2 grows.")
}

// Setassoc: the §5 question — is a set-associative L2 worth a slower
// cycle? Computes break-even implementation times for 2-, 4-, and 8-way L2
// caches against the paper's ~11 ns TTL multiplexor cost, for both a 4 KB
// and a 16 KB L1, showing how a better L1 makes associativity downstream
// more attractive.
package main

import (
	"fmt"
	"log"
	"os"

	"mlcache/internal/experiments"
	"mlcache/internal/report"
	"mlcache/internal/sweep"
)

func main() {
	log.SetFlags(0)

	// The select-to-data-out time of a 2:1 Advanced-Schottky multiplexor,
	// the paper's minimum realistic cost of adding associativity to a
	// discrete-TTL L2.
	const muxCostNS = 11.0

	opt := experiments.Options{Seed: 1, Refs: 250_000, Warmup: 50_000}
	grid := sweep.Grid{
		SizesBytes: sweep.SizesPow2(32, 256),
		CyclesNS:   sweep.CyclesRange(2, 5, experiments.CPUCycleNS),
	}

	for _, l1KB := range []int{4, 16} {
		ctx := experiments.NewContext(opt)
		fmt.Printf("== %d KB L1 ==\n", l1KB)
		t := report.NewTable("set size", "mean break-even (ns)", "vs 11ns mux")
		for _, setSize := range []int{2, 4, 8} {
			be, err := ctx.BreakEven(l1KB, setSize, grid)
			if err != nil {
				log.Fatal(err)
			}
			mean := be.MeanBreakEvenNS()
			verdict := "not worth it"
			if mean > muxCostNS {
				verdict = "worth it"
			}
			t.AddRow(
				fmt.Sprintf("%d-way", setSize),
				fmt.Sprintf("%.1f", mean),
				verdict,
			)
		}
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	fmt.Println("a larger L1 filters more references from the L2, so each avoided")
	fmt.Println("L2 miss is amortized over fewer L2 hits: break-even times grow by")
	fmt.Println("~1.45x per L1 doubling (§5), making associativity more attractive.")
}

// Speedsize: a miniature of Figures 4-1/4-2 — should the next dollar go to
// a *larger* L2 or a *faster* one? Runs a small (size × cycle-time) grid,
// prints the relative-execution-time surface, and extracts the
// equal-performance slopes that answer the question at every design point.
package main

import (
	"fmt"
	"log"
	"os"

	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/report"
	"mlcache/internal/sweep"
)

func main() {
	log.SetFlags(0)

	opt := experiments.Options{Seed: 1, Refs: 300_000, Warmup: 60_000}
	grid := sweep.Grid{
		SizesBytes: sweep.SizesPow2(16, 1024),
		CyclesNS:   sweep.CyclesRange(1, 6, experiments.CPUCycleNS),
	}
	res, err := experiments.SpeedSize(4, 1, mainmem.Base(), grid, opt)
	if err != nil {
		log.Fatal(err)
	}

	if err := experiments.RenderSpeedSize(os.Stdout, res); err != nil {
		log.Fatal(err)
	}

	g := res.ContourGrid()
	field := g.SlopeField()
	fmt.Println("\nequal-performance slope (CPU cycles of L2 cycle time that one size")
	fmt.Println("doubling is worth), at the 3-cycle row:")
	t := report.NewTable("doubling", "slope (cycles)", "verdict")
	j := 2 // the 3-cycle column
	for i := 0; i+1 < len(grid.SizesBytes); i++ {
		slope := field[i][j] / experiments.CPUCycleNS
		verdict := "prefer faster"
		if slope >= 1 {
			verdict = "prefer larger"
		}
		t.AddRow(
			fmt.Sprintf("%s->%sKB", report.SizeLabel(grid.SizesBytes[i]), report.SizeLabel(grid.SizesBytes[i+1])),
			fmt.Sprintf("%.2f", slope),
			verdict,
		)
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nsmall caches: a doubling buys several CPU cycles of cycle-time headroom;")
	fmt.Println("large caches: the benefit of further size fades and speed wins (§4).")
}

// Optimize: the paper's stated goal — "find the multi-level hierarchy that
// maximizes the overall performance while satisfying all the
// implementation constraints." Given a technology model (cycle-time cost
// per size doubling, an 11 ns mux for associativity), one stack-distance
// profiling pass ranks every L2 organization analytically (Equation 1),
// and the top three are verified by full timing simulation.
package main

import (
	"log"
	"os"

	"mlcache/internal/cpu"
	"mlcache/internal/experiments"
	"mlcache/internal/mainmem"
	"mlcache/internal/memsys"
	"mlcache/internal/optimal"
	"mlcache/internal/synth"
	"mlcache/internal/trace"
)

func main() {
	log.SetFlags(0)

	search := optimal.Config{
		Base: experiments.BaseMachine(4,
			experiments.L2Config(512*1024, 3*experiments.CPUCycleNS, 1), mainmem.Base()),
		Tech: optimal.Technology{
			// A discrete-SRAM L2: 20 ns at 64 KB, +3 ns per doubling,
			// +11 ns (the paper's TTL mux) for any associativity.
			BaseCycleNS:    20,
			RefSizeBytes:   64 * 1024,
			NSPerDoubling:  3,
			AssocPenaltyNS: 11,
			MinSizeBytes:   32 * 1024,
			MaxSizeBytes:   4 * 1024 * 1024,
			Assocs:         []int{1, 2, 4, 8},
		},
		Trace: func() trace.Stream { return synth.PaperStream(1, 600_000) },
		CPU:   cpu.Config{CycleNS: experiments.CPUCycleNS, WarmupRefs: 120_000},
		TopK:  3,
		// Candidates sharing a geometry recycle tag arrays; results are
		// bit-identical to fresh construction.
		Pool: memsys.NewPool(2),
	}

	res, err := optimal.Search(search)
	if err != nil {
		log.Fatal(err)
	}
	if err := optimal.Render(os.Stdout, res); err != nil {
		log.Fatal(err)
	}
}
